/**
 * @file
 * ABL5 — extension: recall-through-home (Alewife, 4 serial hops on a
 * dirty miss) versus DASH-style 3-hop forwarding (home forwards the
 * request; the owner ships data straight to the requester).
 *
 * The paper's Table 1 spans both protocol families (Alewife recalls,
 * DASH forwards); this ablation quantifies what that design choice is
 * worth on the dirty-miss-heavy applications.
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);

    std::cout << "ABL5: recall-through-home vs 3-hop forwarding "
                 "(shared memory)\n\n";
    std::cout << std::left << std::setw(12) << "app" << std::right
              << std::setw(14) << "recall" << std::setw(14)
              << "forwarding" << std::setw(12) << "speedup" << '\n';

    for (const auto &[name, factory] : bench::paperApps(scale)) {
        double cycles[2] = {0.0, 0.0};
        for (int fwd = 0; fwd < 2; ++fwd) {
            core::RunSpec spec;
            spec.machine.threeHopForwarding = fwd != 0;
            spec.mechanism = core::Mechanism::SharedMemory;
            cycles[fwd] = core::runApp(factory, spec).runtimeCycles;
        }
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::fixed << std::setprecision(0) << std::setw(14)
                  << cycles[0] << std::setw(14) << cycles[1]
                  << std::setw(12) << std::setprecision(3)
                  << cycles[0] / cycles[1] << '\n';
    }
    std::cout << "\nThe isolated dirty-miss latency drops by one "
                 "serial hop (see tests/coh/forwarding_test.cc), but\n"
                 "end-to-end the effect is modest and can even invert "
                 "under heavy migratory contention,\nwhere requests "
                 "chase moving owners — a classic forwarding-protocol "
                 "trade-off.\n";
    return 0;
}
