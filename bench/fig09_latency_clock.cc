/**
 * @file
 * FIG9 — regenerate Figure 9: execution time (processor cycles) versus
 * relative network latency, emulated by scaling the processor clock
 * against the asynchronous network (Section 5.3: Alewife's clock
 * generator runs 14..20 MHz; we extend the sweep upward to preview
 * faster processors). The x column is the one-way latency of a 24-byte
 * packet in processor cycles (Alewife: ~15).
 *
 * --predict additionally overlays the analytic prediction of the same
 * curves from ONE instrumented run per mechanism (src/obs/predict.hh),
 * with per-point error and MAPE against the measured sweep.
 */

#include <chrono>
#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);
    const bool predict = bench::parsePredict(argc, argv);
    const MachineConfig base;

    // 14..20 MHz is the hardware range; beyond emulates faster CPUs.
    std::vector<double> mhz = {14.0, 16.0, 18.0, 20.0, 30.0, 40.0};
    if (scale == bench::Scale::Quick)
        mhz = {14.0, 20.0, 40.0};

    std::cout << "FIG9: runtime (cycles) vs one-way 24B packet latency "
                 "(cycles), via clock scaling\n\n";

    for (const auto &[name, factory] : bench::paperApps(scale)) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto series = core::clockSweep(
            factory, base, bench::allMechs(), mhz, engine.options(name));
        const double sweepMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        core::printSeries(std::cout, name, "net lat (cycles)", series);

        if (predict) {
            bench::printPredictedSeries(
                std::cout, factory, base, series, mhz,
                [&](double m) {
                    obs::PredictTarget t;
                    t.machine = base;
                    t.machine.procMhz = m;
                    return t;
                },
                sweepMs);
        }

        // Sensitivity: slope of SM vs MP across the sweep.
        auto spread = [](const core::MechSeries &s) {
            const double a = s.points.front().result.runtimeCycles;
            const double b = s.points.back().result.runtimeCycles;
            return b / a;
        };
        std::cout << "  growth (14 MHz -> 40 MHz point): SM "
                  << std::fixed << std::setprecision(2)
                  << spread(series[0]) << "x, SM+PF "
                  << spread(series[1]) << "x, MP-I "
                  << spread(series[2]) << "x\n\n";
    }
    return 0;
}
