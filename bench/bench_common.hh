/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Every bench prints the rows or series of one paper artifact. The
 * workload sizes are scaled down from the paper's (the simulator runs
 * every protocol event of every run), but preserve the structural
 * ratios that drive the results; pass --full for sizes closer to the
 * paper's, --quick for smoke-test sizes.
 *
 * All benches also accept --jobs N (or the ALEWIFE_JOBS environment
 * variable) to fan independent simulations out over worker threads,
 * --threads N to run the intra-run window engine inside each
 * simulation (results are bit-identical either way; jobs x threads is
 * arbitrated against the host by the sweep engine), and --cache-dir
 * DIR to persist results between invocations — see BenchEngine below.
 */

#ifndef ALEWIFE_BENCH_COMMON_HH
#define ALEWIFE_BENCH_COMMON_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "apps/em3d.hh"
#include "apps/graph/catalog.hh"
#include "apps/iccg.hh"
#include "apps/moldyn.hh"
#include "apps/stream.hh"
#include "apps/unstruc.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "exp/result_cache.hh"
#include "obs/critpath.hh"
#include "obs/options.hh"
#include "obs/predict.hh"

namespace alewife::bench {

/** Workload scale selected on the command line. */
enum class Scale
{
    Quick,
    Default,
    Full,
};

inline Scale
parseScale(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return Scale::Quick;
        if (std::strcmp(argv[i], "--full") == 0)
            return Scale::Full;
    }
    return Scale::Default;
}

inline apps::Em3d::Params
em3dParams(Scale s)
{
    apps::Em3d::Params p;
    switch (s) {
      case Scale::Quick:
        p.graph.nodesPerSide = 512;
        p.graph.degree = 6;
        p.iters = 2;
        break;
      case Scale::Default:
        p.graph.nodesPerSide = 2000;
        p.graph.degree = 8;
        p.iters = 3;
        break;
      case Scale::Full:
        p.graph.nodesPerSide = 10000; // the paper's parameters
        p.graph.degree = 10;
        p.iters = 10;
        break;
    }
    return p;
}

inline apps::Unstruc::Params
unstrucParams(Scale s)
{
    apps::Unstruc::Params p;
    switch (s) {
      case Scale::Quick:
        p.mesh.nodes = 600;
        p.iters = 2;
        break;
      case Scale::Default:
        p.mesh.nodes = 2000; // MESH2K size
        p.iters = 2;
        break;
      case Scale::Full:
        p.mesh.nodes = 2000;
        p.iters = 6;
        break;
    }
    return p;
}

inline apps::Iccg::Params
iccgParams(Scale s)
{
    apps::Iccg::Params p;
    switch (s) {
      case Scale::Quick:
        p.matrix.rows = 800;
        break;
      case Scale::Default:
        p.matrix.rows = 2000;
        break;
      case Scale::Full:
        p.matrix.rows = 8000;
        break;
    }
    return p;
}

inline apps::Moldyn::Params
moldynParams(Scale s)
{
    apps::Moldyn::Params p;
    switch (s) {
      case Scale::Quick:
        p.box.molecules = 512;
        p.box.cutoff = 1.3;
        p.iters = 1;
        break;
      case Scale::Default:
        p.box.molecules = 1024;
        p.box.cutoff = 1.4;
        p.iters = 2;
        break;
      case Scale::Full:
        p.box.molecules = 2048;
        p.box.cutoff = 1.5;
        p.iters = 4;
        break;
    }
    return p;
}

inline apps::graph::GraphAppParams
graphParams(Scale s, workload::GraphFamily family)
{
    apps::graph::GraphAppParams p;
    p.graph.family = family;
    switch (s) {
      case Scale::Quick:
        p.graph.vertices = 400;
        p.graph.avgDegree = 5;
        p.iters = 2;
        break;
      case Scale::Default:
        p.graph.vertices = 1024;
        p.graph.avgDegree = 8;
        p.iters = 3;
        break;
      case Scale::Full:
        p.graph.vertices = 4096;
        p.graph.avgDegree = 12;
        p.iters = 5;
        break;
    }
    return p;
}

/** The four paper applications as (name, factory) pairs. */
inline std::vector<std::pair<std::string, core::AppFactory>>
paperApps(Scale s)
{
    return {
        {"EM3D", apps::Em3d::factory(em3dParams(s))},
        {"UNSTRUC", apps::Unstruc::factory(unstrucParams(s))},
        {"ICCG", apps::Iccg::factory(iccgParams(s))},
        {"MOLDYN", apps::Moldyn::factory(moldynParams(s))},
    };
}

/** All five mechanisms as a vector. */
inline std::vector<core::Mechanism>
allMechs()
{
    const auto a = core::allMechanisms();
    return {a.begin(), a.end()};
}

/** --predict: overlay analytically predicted curves on the sweep. */
inline bool
parsePredict(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--predict") == 0)
            return true;
    return false;
}

/**
 * Print the analytically predicted curve next to each measured series
 * with per-point error and MAPE (src/obs/predict.hh).
 *
 * One instrumented run per mechanism at the sweep's base
 * configuration captures the dependency graph; every sweep point is
 * then an O(events) arithmetic solve instead of a full simulation, so
 * each *additional* point costs orders of magnitude less than
 * simulating it. @p knobs are the underlying per-point sweep values
 * (parallel to every series' points — the raw bisection targets or
 * clock rates, not the derived x axis) and @p targetFor maps one to a
 * PredictTarget. @p sweepMs is the wall time the measured sweep took,
 * for the cost line.
 */
inline void
printPredictedSeries(
    std::ostream &os, const core::AppFactory &factory,
    const MachineConfig &base,
    const std::vector<core::MechSeries> &measured,
    const std::vector<double> &knobs,
    const std::function<obs::PredictTarget(double)> &targetFor,
    double sweepMs)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t captureEvents = 0;
    std::uint64_t solves = 0;
    os << "  predicted (one instrumented run per mechanism, then one "
          "analytic solve per point):\n";
    for (const auto &s : measured) {
        core::RunSpec spec;
        spec.machine = base;
        spec.mechanism = s.mech;
        obs::CritPathRecorder rec;
        core::runApp(factory, spec, /*verify_fatal=*/true,
                     /*auditor=*/nullptr, /*driver=*/nullptr, &rec);
        obs::Predictor p(rec.graph());
        captureEvents += p.solveEvents();

        os << "    " << std::setw(6) << std::left
           << core::mechanismShortName(s.mech) << std::right;
        double errSum = 0.0;
        const std::size_t n = std::min(s.points.size(), knobs.size());
        for (std::size_t i = 0; i < n; ++i) {
            const double meas = s.points[i].result.runtimeCycles;
            const double pred =
                p.predictRuntimeCycles(targetFor(knobs[i]));
            const double err =
                meas > 0 ? 100.0 * std::abs(pred - meas) / meas : 0.0;
            errSum += err;
            ++solves;
            os << std::setw(11) << std::fixed << std::setprecision(0)
               << pred << " (" << std::setprecision(1) << err << "%)";
        }
        os << "   MAPE " << std::setprecision(1)
           << (n ? errSum / static_cast<double>(n) : 0.0) << "%\n";
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    os << "    prediction cost: " << measured.size() << " captures ("
       << captureEvents << " simulated events) + " << solves
       << " solves = " << std::setprecision(0) << ms
       << " ms, vs " << sweepMs << " ms for the measured sweep\n";
}

/**
 * Shared orchestration setup for benches. Parses
 *
 *   --jobs N        run up to N simulations concurrently (default: the
 *                   ALEWIFE_JOBS environment variable, else 1)
 *   --cache-dir D   persist results as JSON under D; reruns at the
 *                   same scale skip simulations already cached
 *
 * and hands each bench per-app exp::EngineOptions via options(). The
 * cache key includes the workload identity (app name + scale), so
 * --quick and --full runs never collide.
 *
 * Observability flags ride along on every bench:
 *
 *   --trace-out F     Perfetto/Chrome timeline JSON per run
 *   --metrics-out F   metrics-registry JSON (sweep-merged per app)
 *   --obs-interval C  interval-profile sampling period in cycles
 *
 * Output paths are tagged per app (obs::withPathTag with the app
 * name), and the sweep engine tags them again per run, so a bench
 * spanning four apps with parallel jobs never shares a sink.
 */
class BenchEngine
{
  public:
    BenchEngine(int argc, char **argv, Scale scale)
        : cache_(cacheDirArg(argc, argv)), scale_(scale)
    {
        jobs_ = 1;
        if (const char *env = std::getenv("ALEWIFE_JOBS"))
            jobs_ = std::max(1, std::atoi(env));
        for (int i = 1; i + 1 < argc; ++i) {
            if (std::strcmp(argv[i], "--jobs") == 0)
                jobs_ = std::max(1, std::atoi(argv[i + 1]));
            else if (std::strcmp(argv[i], "--threads") == 0)
                threads_ = std::max(1, std::atoi(argv[i + 1]));
            else if (std::strcmp(argv[i], "--trace-out") == 0)
                obs_.traceOut = argv[i + 1];
            else if (std::strcmp(argv[i], "--metrics-out") == 0)
                obs_.metricsOut = argv[i + 1];
            else if (std::strcmp(argv[i], "--obs-interval") == 0)
                obs_.intervalCycles =
                    std::max(0.0, std::atof(argv[i + 1]));
        }
    }

    /** Engine options for one app's runs; @p appName keys the cache. */
    exp::EngineOptions
    options(const std::string &appName)
    {
        exp::EngineOptions opts;
        opts.jobs = jobs_;
        opts.threads = threads_;
        if (!cache_.dir().empty()) {
            opts.cache = &cache_;
            opts.appKey = appName + "/" + scaleName(scale_);
        }
        if (obs_.any()) {
            opts.obs = obs_;
            if (!opts.obs.traceOut.empty())
                opts.obs.traceOut =
                    obs::withPathTag(opts.obs.traceOut, appName);
            if (!opts.obs.metricsOut.empty())
                opts.obs.metricsOut =
                    obs::withPathTag(opts.obs.metricsOut, appName);
            if (!opts.obs.flightOut.empty())
                opts.obs.flightOut =
                    obs::withPathTag(opts.obs.flightOut, appName);
        }
        return opts;
    }

    int
    jobs() const
    {
        return jobs_;
    }

  private:
    static std::string
    cacheDirArg(int argc, char **argv)
    {
        for (int i = 1; i + 1 < argc; ++i)
            if (std::strcmp(argv[i], "--cache-dir") == 0)
                return argv[i + 1];
        return "";
    }

    static const char *
    scaleName(Scale s)
    {
        switch (s) {
          case Scale::Quick:
            return "quick";
          case Scale::Default:
            return "default";
          case Scale::Full:
            return "full";
        }
        return "?";
    }

    exp::ResultCache cache_;
    Scale scale_;
    int jobs_ = 1;
    int threads_ = 1;
    obs::RecorderOptions obs_;
};

} // namespace alewife::bench

#endif // ALEWIFE_BENCH_COMMON_HH
