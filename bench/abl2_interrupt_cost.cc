/**
 * @file
 * ABL2 — ablation of interrupt overhead on ICCG (Section 4.3.3).
 *
 * ICCG shows the paper's largest interrupt-to-polling gap: frequent
 * asynchronous interrupts perturb processor progress and inflate
 * synchronization time in the DAG computation. Sweeping the interrupt
 * entry cost shows the gap widening, while the polling variant is
 * insensitive.
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    const auto factory = apps::Iccg::factory(bench::iccgParams(scale));

    std::cout << "ABL2: interrupt entry cost vs ICCG runtime\n\n";
    std::cout << std::left << std::setw(12) << "int-cycles"
              << std::right << std::setw(14) << "MP-I" << std::setw(14)
              << "MP-P" << std::setw(12) << "I/P ratio" << '\n';

    for (double icost : {10.0, 42.0, 100.0, 200.0}) {
        MachineConfig cfg;
        cfg.amInterruptCycles = icost;
        core::RunSpec si;
        si.machine = cfg;
        si.mechanism = core::Mechanism::MpInterrupt;
        core::RunSpec sp;
        sp.machine = cfg;
        sp.mechanism = core::Mechanism::MpPolling;
        const auto ri = core::runApp(factory, si);
        const auto rp = core::runApp(factory, sp);
        std::cout << std::left << std::setw(12) << icost << std::right
                  << std::fixed << std::setprecision(0) << std::setw(14)
                  << ri.runtimeCycles << std::setw(14)
                  << rp.runtimeCycles << std::setw(12)
                  << std::setprecision(2)
                  << ri.runtimeCycles / rp.runtimeCycles << '\n';
    }
    return 0;
}
