/**
 * @file
 * PERF — tracked performance benchmark of the simulation kernel.
 *
 * Measures raw events/sec of the EventQueue hot path (schedule / fire /
 * cancel) and wall time of a standard workload bundle (EM3D and ICCG at
 * default scale plus one Figure-8 cross-traffic column), then emits
 * schema-versioned JSON so successive PRs leave a perf trajectory in
 * BENCH_kernel.json at the repo root.
 *
 * Usage:
 *   perf_kernel [--quick] [--repeat N] [--out FILE]
 *
 *   --quick     smoke-test sizes (used by the `bench` ctest label; no
 *               timing assertions, just "completes and emits valid JSON")
 *   --repeat N  repeat each microbench N times, keep the best (default 3)
 *   --out FILE  where to write the JSON (default BENCH_kernel.json)
 *
 * Timing numbers are only comparable between Release builds; the build
 * type is recorded in the JSON, and bench/CMakeLists.txt warns when
 * benchmarks are configured without CMAKE_BUILD_TYPE=Release. Use
 * scripts/bench.sh to run the whole protocol reproducibly.
 */

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "ckpt/ckpt.hh"
#include "ckpt/restore.hh"
#include "core/runner.hh"
#include "exp/json.hh"
#include "obs/recorder.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

#if defined(__unix__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace {

using namespace alewife;

double
nowSeconds()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

/** One measured result row. */
struct Row
{
    std::string name;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    double runtimeCycles = 0.0; ///< 0 for microbenches

    // Parallel-engine rows only (threads > 0).
    int threads = 0;
    std::uint64_t parallelWindows = 0;
    double checksum = 0.0;

    // Checkpoint rows only.
    std::uint64_t snapshotBytes = 0;
    double mbPerSec = 0.0;
    /** Simulated-cycle progress a periodic save's wall time forgoes. */
    double pauseCyclesEquiv = 0.0;

    // Critical-path analyzer rows only.
    std::uint64_t graphBytes = 0; ///< captured DepGraph footprint
    double solvesPerSec = 0.0;    ///< analytic sweep points per second
};

// ---------------------------------------------------------------------
// Event-queue microbenches. Callbacks are named function objects (not
// std::function) so the queue's small-buffer path is what is measured.
// ---------------------------------------------------------------------

/** Self-rescheduling chain: the pure schedule+fire cost. */
struct Chain
{
    EventQueue *eq;
    std::uint64_t *remaining;
    Tick stride;

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        eq->schedule(eq->now() + stride, Chain{eq, remaining, stride});
    }
};

/** Chain with randomized delays: exercises heap reordering. */
struct RandomChain
{
    EventQueue *eq;
    std::uint64_t *remaining;
    Rng rng;

    void
    operator()()
    {
        if (*remaining == 0)
            return;
        --*remaining;
        const Tick d = 1 + rng.nextBounded(200);
        eq->schedule(eq->now() + d, RandomChain{eq, remaining, rng});
    }
};

struct Noop
{
    void operator()() const {}
};

/** Chain that also schedules-and-cancels a shadow event every step. */
struct CancelChain
{
    EventQueue *eq;
    std::uint64_t *remaining;

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        EventHandle h = eq->schedule(eq->now() + 7, Noop{});
        h.cancel();
        eq->schedule(eq->now() + 3, CancelChain{eq, remaining});
    }
};

template <typename Seed>
Row
runMicro(const std::string &name, std::uint64_t events, int actors,
         int repeat, Seed seedOne, bool withObserver = false)
{
    Row best;
    best.name = name;
    for (int r = 0; r < repeat; ++r) {
        EventQueue eq;
        // The attached variant wires an obs::Recorder straight into
        // the queue: every fired event pays the hook dispatch. The
        // default (detached) variant is the "near-zero when off"
        // guard — its cost is the null check eq_chain has always paid.
        std::optional<obs::Recorder> rec;
        if (withObserver) {
            obs::RecorderOptions ro;
            ro.flightEvents = 4096;
            rec.emplace(ro, 1);
            eq.setAuditHooks(&*rec);
        }
        std::uint64_t remaining = events;
        for (int a = 0; a < actors; ++a)
            seedOne(eq, remaining, a);
        const double t0 = nowSeconds();
        eq.run();
        const double dt = nowSeconds() - t0;
        if (r == 0 || dt < best.wallSeconds) {
            best.events = eq.eventsExecuted();
            best.wallSeconds = dt;
        }
    }
    best.eventsPerSec =
        static_cast<double>(best.events) / best.wallSeconds;
    return best;
}

Row
runWorkload(const std::string &name, const core::AppFactory &factory,
            core::Mechanism mech, double crossBytesPerCycle,
            const MachineConfig &machine = {}, int threads = 0)
{
    core::RunSpec spec;
    spec.machine = machine;
    spec.mechanism = mech;
    spec.crossTraffic.bytesPerCycle = crossBytesPerCycle;
    if (threads > 0)
        spec.threads = threads;
    const double t0 = nowSeconds();
    const auto res = core::runApp(factory, spec);
    Row row;
    row.name = name;
    row.wallSeconds = nowSeconds() - t0;
    row.events = res.simEvents;
    row.eventsPerSec =
        static_cast<double>(res.simEvents) / row.wallSeconds;
    row.runtimeCycles = res.runtimeCycles;
    row.threads = threads;
    row.parallelWindows = res.parallelWindows;
    row.checksum = res.checksum;
    return row;
}

// ---------------------------------------------------------------------
// Checkpoint save/restore throughput (src/ckpt/). Save = capture the
// paused machine into the snapshot document; restore = replay a fresh
// machine to the snapshot position and bit-audit it (the src/ckpt/
// restore strategy). Both are normalized by the serialized snapshot
// size, and save cost is also expressed as the simulated-cycle
// progress its pause forgoes on this workload.
// ---------------------------------------------------------------------

/** Captures repeatedly at the midpoint, keeping the best save time. */
struct CkptSaveProbe : alewife::core::RunDriver
{
    std::uint64_t at;
    int repeat;
    double bestSeconds = 0.0;
    std::optional<ckpt::Snapshot> snap;

    CkptSaveProbe(std::uint64_t at_, int repeat_)
        : at(at_), repeat(repeat_)
    {
    }

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        m.start(f);
        if (m.stepUntilEvents(at)) {
            for (int r = 0; r < repeat; ++r) {
                const double t0 = nowSeconds();
                ckpt::Snapshot s = ckpt::save(m);
                const double dt = nowSeconds() - t0;
                if (r == 0 || dt < bestSeconds)
                    bestSeconds = dt;
                if (r == 0)
                    snap = std::move(s);
            }
        }
        while (m.stepOne()) {
        }
        return m.finishRun();
    }
};

/** Times the replay+audit restore of one snapshot. */
struct CkptRestoreProbe : alewife::core::RunDriver
{
    const ckpt::Snapshot &snap;
    double seconds = 0.0;

    explicit CkptRestoreProbe(const ckpt::Snapshot &s) : snap(s) {}

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        const double t0 = nowSeconds();
        const ckpt::ResumeResult r = ckpt::resume(m, f, snap);
        seconds = nowSeconds() - t0;
        if (!r.ok) {
            std::fprintf(stderr, "perf_kernel: %s\n", r.error.c_str());
            std::abort();
        }
        while (m.stepOne()) {
        }
        return m.finishRun();
    }
};

std::pair<Row, Row>
runCkpt(const core::AppFactory &factory, const Row &straight, int repeat)
{
    const core::RunSpec spec; // SM at the base machine, like straight

    CkptSaveProbe saver(straight.events / 2, repeat);
    core::runApp(factory, spec, true, nullptr, &saver);
    const std::uint64_t bytes = saver.snap->doc.dump(1).size();

    Row save;
    save.name = "ckpt_save";
    save.events = saver.at;
    save.wallSeconds = saver.bestSeconds;
    save.snapshotBytes = bytes;
    save.mbPerSec =
        static_cast<double>(bytes) / 1e6 / saver.bestSeconds;
    save.pauseCyclesEquiv = saver.bestSeconds * straight.runtimeCycles
                            / straight.wallSeconds;

    Row restore;
    restore.name = "ckpt_restore";
    restore.events = saver.at;
    restore.snapshotBytes = bytes;
    for (int r = 0; r < repeat; ++r) {
        CkptRestoreProbe probe(*saver.snap);
        core::runApp(factory, spec, true, nullptr, &probe);
        if (r == 0 || probe.seconds < restore.wallSeconds)
            restore.wallSeconds = probe.seconds;
    }
    restore.eventsPerSec =
        static_cast<double>(restore.events) / restore.wallSeconds;
    restore.mbPerSec =
        static_cast<double>(bytes) / 1e6 / restore.wallSeconds;
    return {save, restore};
}

// ---------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------

std::string
cpuModel()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find("model name");
        if (pos != std::string::npos) {
            const auto colon = line.find(':');
            if (colon != std::string::npos)
                return line.substr(line.find_first_not_of(" \t",
                                                          colon + 1));
        }
    }
    return "unknown";
}

exp::Json
machineMeta()
{
    auto m = exp::Json::object();
    m.set("cpu", cpuModel());
#if defined(__unix__)
    utsname u{};
    if (uname(&u) == 0) {
        m.set("os", std::string(u.sysname) + " " + u.release);
        m.set("arch", u.machine);
        m.set("host", u.nodename);
    }
    m.set("hw_threads",
          static_cast<std::int64_t>(sysconf(_SC_NPROCESSORS_ONLN)));
#endif
    return m;
}

/**
 * Commit identity: scripts/bench.sh exports ALEWIFE_GIT_SHA so the
 * JSON records exactly which tree produced the numbers; a bare binary
 * run (no wrapper, no git) degrades to "unknown".
 */
std::string
gitSha()
{
    if (const char *env = std::getenv("ALEWIFE_GIT_SHA"))
        return env;
    return "unknown";
}

exp::Json
buildMeta()
{
    auto b = exp::Json::object();
    b.set("compiler", __VERSION__);
    b.set("git_sha", gitSha());
#ifdef ALEWIFE_BUILD_TYPE
    b.set("build_type", ALEWIFE_BUILD_TYPE);
#else
    b.set("build_type", "unknown");
#endif
#ifdef NDEBUG
    b.set("assertions", false);
#else
    b.set("assertions", true);
#endif
    return b;
}

std::string
isoTimestamp()
{
    char buf[64];
    const std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    const bool quick = scale == bench::Scale::Quick;
    std::string out = "BENCH_kernel.json";
    int repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--out" && i + 1 < argc)
            out = argv[i + 1];
        if (std::string(argv[i]) == "--repeat" && i + 1 < argc)
            repeat = std::max(1, std::atoi(argv[i + 1]));
    }

    const std::uint64_t microEvents = quick ? 200'000 : 4'000'000;
    std::vector<Row> rows;

    std::printf("PERF: simulation-kernel benchmark (%s scale)\n\n",
                quick ? "quick" : "default");

    // --- microbenches ---
    rows.push_back(runMicro(
        "eq_chain", microEvents, 64, repeat,
        [](EventQueue &eq, std::uint64_t &remaining, int a) {
            eq.schedule(static_cast<Tick>(a + 1),
                        Chain{&eq, &remaining,
                              static_cast<Tick>(5 + a % 7)});
        }));
    rows.push_back(runMicro(
        "eq_chain_obs", microEvents, 64, repeat,
        [](EventQueue &eq, std::uint64_t &remaining, int a) {
            eq.schedule(static_cast<Tick>(a + 1),
                        Chain{&eq, &remaining,
                              static_cast<Tick>(5 + a % 7)});
        },
        /*withObserver=*/true));
    rows.push_back(runMicro(
        "eq_random", microEvents, 64, repeat,
        [](EventQueue &eq, std::uint64_t &remaining, int a) {
            eq.schedule(static_cast<Tick>(a + 1),
                        RandomChain{&eq, &remaining,
                                    Rng(42 + static_cast<unsigned>(a))});
        }));
    rows.push_back(runMicro(
        "eq_cancel_churn", microEvents / 2, 64, repeat,
        [](EventQueue &eq, std::uint64_t &remaining, int a) {
            eq.schedule(static_cast<Tick>(a + 1),
                        CancelChain{&eq, &remaining});
        }));

    // --- standard workload bundle ---
    rows.push_back(runWorkload(
        "em3d_sm", apps::Em3d::factory(bench::em3dParams(scale)),
        core::Mechanism::SharedMemory, 0.0));
    rows.push_back(runWorkload(
        "iccg_sm", apps::Iccg::factory(bench::iccgParams(scale)),
        core::Mechanism::SharedMemory, 0.0));
    // Irregular point-to-point traffic (R-MAT BFS under polling):
    // stresses the active-message delivery path rather than the
    // coherence protocol, so kernel regressions in either show up.
    rows.push_back(runWorkload(
        "graph_bfs",
        apps::graph::makeApp(
            "bfs",
            bench::graphParams(scale, workload::GraphFamily::RMat)),
        core::Mechanism::MpPolling, 0.0));
    // One Figure-8 column: EM3D under cross-traffic consuming 8 B/cyc
    // of the native 18 B/cyc bisection, SM and MP-interrupt.
    const auto fig08Params = bench::em3dParams(bench::Scale::Quick);
    rows.push_back(runWorkload(
        "fig08_em3d_sm", apps::Em3d::factory(fig08Params),
        core::Mechanism::SharedMemory, 8.0));
    rows.push_back(runWorkload(
        "fig08_em3d_mpi", apps::Em3d::factory(fig08Params),
        core::Mechanism::MpInterrupt, 8.0));

    // --- intra-run parallel engine (sim/parallel.hh) ---
    // One 256-node EM3D run per worker count. The t1 row is the
    // serial kernel (the engine never engages at threads=1); t2/t4
    // use the windowed engine and must reproduce the serial run
    // bit-identically — checked here, not just in the test suite.
    // Wall-clock speedup depends on the host: with fewer hardware
    // threads than workers (see machine.hw_threads) the extra workers
    // only add coordination cost, which this bench then documents
    // honestly rather than hiding.
    {
        apps::Em3d::Params p = bench::em3dParams(bench::Scale::Quick);
        p.graph.nprocs = 256;
        MachineConfig mesh256;
        mesh256.meshX = 16;
        mesh256.meshY = 16;
        const auto factory = apps::Em3d::factory(p);
        Row base;
        const std::vector<int> counts =
            quick ? std::vector<int>{1, 2, 4}
                  : std::vector<int>{1, 2, 4, 8};
        for (int threads : counts) {
            Row r = runWorkload(
                "par_em3d_256_t" + std::to_string(threads), factory,
                core::Mechanism::SharedMemory, 0.0, mesh256, threads);
            if (threads == 1) {
                base = r;
            } else {
                if (r.parallelWindows == 0) {
                    std::fprintf(stderr,
                                 "perf_kernel: parallel engine did not "
                                 "engage at threads=%d\n", threads);
                    return 1;
                }
                if (r.checksum != base.checksum
                    || r.events != base.events
                    || r.runtimeCycles != base.runtimeCycles) {
                    std::fprintf(stderr,
                                 "perf_kernel: parallel run at "
                                 "threads=%d is not bit-identical to "
                                 "serial\n", threads);
                    return 1;
                }
            }
            rows.push_back(r);
        }
    }

    // --- checkpoint save/restore throughput ---
    {
        const Row *em3d = nullptr;
        for (const auto &r : rows)
            if (r.name == "em3d_sm")
                em3d = &r;
        const auto [save, restore] = runCkpt(
            apps::Em3d::factory(bench::em3dParams(scale)), *em3d,
            repeat);
        rows.push_back(save);
        rows.push_back(restore);
    }

    // --- critical-path capture overhead + analytic solve throughput ---
    // Capture = the em3d_sm workload with the dependency recorder
    // attached (src/obs/critpath.hh); overhead reads against the
    // em3d_sm row. Solve = repeated analytic replays of the captured
    // graph at varied targets — the marginal cost of one predicted
    // sweep point (src/obs/predict.hh).
    {
        const auto factory =
            apps::Em3d::factory(bench::em3dParams(scale));
        core::RunSpec spec;
        obs::CritPathRecorder rec;
        const double t0 = nowSeconds();
        const auto res = core::runApp(factory, spec, true, nullptr,
                                      nullptr, &rec);
        Row cap;
        cap.name = "critpath_capture";
        cap.events = res.simEvents;
        cap.wallSeconds = nowSeconds() - t0;
        cap.eventsPerSec =
            static_cast<double>(cap.events) / cap.wallSeconds;
        cap.runtimeCycles = res.runtimeCycles;
        cap.graphBytes = rec.graph().memoryBytes();
        rows.push_back(cap);

        obs::Predictor p(rec.graph());
        const int solves = quick ? 50 : 200;
        double acc = 0.0;
        const double s0 = nowSeconds();
        for (int i = 0; i < solves; ++i) {
            obs::PredictTarget t = p.baseTarget();
            t.machine.procMhz = 14.0 + i % 27; // defeat any caching
            acc += p.predictRuntimeCycles(t);
        }
        Row solve;
        solve.name = "critpath_solve";
        solve.wallSeconds = nowSeconds() - s0;
        solve.events = p.solveEvents()
                       * static_cast<std::uint64_t>(solves);
        solve.eventsPerSec =
            static_cast<double>(solve.events) / solve.wallSeconds;
        solve.solvesPerSec =
            static_cast<double>(solves) / solve.wallSeconds;
        if (acc <= 0.0) {
            std::fprintf(stderr,
                         "perf_kernel: predictor returned no runtime\n");
            return 1;
        }
        rows.push_back(solve);
    }

    // --- report ---
    std::printf("%-18s %12s %10s %14s %14s\n", "benchmark", "events",
                "wall (s)", "events/sec", "cycles");
    for (const auto &r : rows) {
        std::printf("%-18s %12llu %10.3f %14.0f %14.0f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.wallSeconds, r.eventsPerSec, r.runtimeCycles);
        if (r.snapshotBytes > 0) {
            std::printf("  %-16s %.2f MB snapshot, %.1f MB/s",
                        "", static_cast<double>(r.snapshotBytes) / 1e6,
                        r.mbPerSec);
            if (r.pauseCyclesEquiv > 0.0)
                std::printf(", ~%.0f cycles paused/save",
                            r.pauseCyclesEquiv);
            std::printf("\n");
        }
        if (r.graphBytes > 0)
            std::printf("  %-16s %.2f MB dependency graph\n", "",
                        static_cast<double>(r.graphBytes) / 1e6);
        if (r.solvesPerSec > 0.0)
            std::printf("  %-16s %.0f predicted sweep points/s\n", "",
                        r.solvesPerSec);
    }

    auto doc = exp::Json::object();
    // v2: git_sha in build, the engine block, and per-row threads /
    // parallel_windows on the intra-run parallel rows.
    doc.set("schema_version", 2);
    doc.set("benchmark", "perf_kernel");
    doc.set("mode", quick ? "quick" : "default");
    doc.set("generated_at", isoTimestamp());
    doc.set("repeat", repeat);
    doc.set("machine", machineMeta());
    doc.set("build", buildMeta());
    {
        // Engine mode: rows without "threads" use the serial kernel;
        // par_* rows use the conservative windowed engine, whose
        // wall-clock is only meaningful relative to hw_threads.
        auto eng = exp::Json::object();
        eng.set("serial", "event-loop");
        eng.set("parallel", "conservative-window");
        eng.set("hw_threads",
                static_cast<std::int64_t>(
                    std::thread::hardware_concurrency()));
        doc.set("engine", std::move(eng));
    }
    auto arr = exp::Json::array();
    for (const auto &r : rows) {
        auto o = exp::Json::object();
        o.set("name", r.name);
        o.set("events", r.events);
        o.set("wall_seconds", r.wallSeconds);
        o.set("events_per_sec", r.eventsPerSec);
        if (r.runtimeCycles > 0.0)
            o.set("runtime_cycles", r.runtimeCycles);
        if (r.threads > 0) {
            o.set("threads", static_cast<std::int64_t>(r.threads));
            o.set("parallel_windows", r.parallelWindows);
        }
        if (r.snapshotBytes > 0) {
            o.set("snapshot_bytes", r.snapshotBytes);
            o.set("mb_per_sec", r.mbPerSec);
            if (r.pauseCyclesEquiv > 0.0)
                o.set("pause_cycles_equiv", r.pauseCyclesEquiv);
        }
        if (r.graphBytes > 0)
            o.set("graph_bytes", r.graphBytes);
        if (r.solvesPerSec > 0.0)
            o.set("solves_per_sec", r.solvesPerSec);
        arr.push(std::move(o));
    }
    doc.set("results", std::move(arr));

    std::ofstream f(out);
    f << doc.dump(2) << '\n';
    if (!f) {
        std::fprintf(stderr, "perf_kernel: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
