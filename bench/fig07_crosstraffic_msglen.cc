/**
 * @file
 * FIG7 — regenerate Figure 7: sensitivity of the bisection-emulation
 * methodology to the cross-traffic message length. The same bandwidth
 * is consumed with messages from 16 to 512 bytes; small messages
 * emulate a uniformly-lowered bisection, large ones add burstiness.
 * The paper picks 64 bytes as the compromise.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);
    const MachineConfig base;

    std::vector<std::uint32_t> lens = {16, 32, 64, 128, 256, 512};
    if (scale == bench::Scale::Quick)
        lens = {16, 64, 512};

    // Consume half of Alewife's bisection (18 -> 9 bytes/cycle).
    const double consumed = base.bisectionBytesPerCycle() / 2.0;

    std::cout << "FIG7: sensitivity to cross-traffic message length\n"
              << "(consuming " << consumed
              << " bytes/cycle of bisection; EM3D)\n\n";

    const auto factory =
        apps::Em3d::factory(bench::em3dParams(scale));
    const auto series = core::msgLenSweep(
        factory, base,
        {core::Mechanism::SharedMemory, core::Mechanism::MpInterrupt},
        consumed, lens, engine.options("EM3D"));
    core::printSeries(std::cout, "EM3D", "cross msg bytes", series);
    return 0;
}
