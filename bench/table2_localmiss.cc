/**
 * @file
 * TAB2 — regenerate Table 2: machine parameters recalculated in terms
 * of local cache-miss latency (the frame of reference the paper argues
 * is right for memory-bound applications, Section 5.4).
 */

#include <iostream>

#include "core/report.hh"

int
main()
{
    alewife::core::printTable2(std::cout);
    return 0;
}
