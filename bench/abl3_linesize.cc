/**
 * @file
 * ABL3 — ablation of cache-line size on shared-memory volume.
 *
 * Section 5.1 notes that shared memory's volume disadvantage "would be
 * lower for systems with a larger cache line size for most
 * applications". Sweep 16/32/64-byte lines and report SM volume and
 * runtime against the (line-size-independent) MP baseline.
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    const auto factory = apps::Em3d::factory(bench::em3dParams(scale));

    std::cout << "ABL3: cache-line size vs shared-memory volume "
                 "(EM3D)\n\n";
    std::cout << std::left << std::setw(12) << "line-bytes"
              << std::right << std::setw(14) << "SM volume"
              << std::setw(14) << "SM runtime" << std::setw(14)
              << "SM/MP vol" << '\n';

    core::RunSpec mp_spec;
    mp_spec.mechanism = core::Mechanism::MpInterrupt;
    const auto mp = core::runApp(factory, mp_spec);

    for (std::uint32_t line : {16u, 32u, 64u}) {
        MachineConfig cfg;
        cfg.lineBytes = line;
        core::RunSpec spec;
        spec.machine = cfg;
        spec.mechanism = core::Mechanism::SharedMemory;
        const auto r = core::runApp(factory, spec);
        std::cout << std::left << std::setw(12) << line << std::right
                  << std::setw(14) << r.volume.total() << std::fixed
                  << std::setprecision(0) << std::setw(14)
                  << r.runtimeCycles << std::setw(14)
                  << std::setprecision(2)
                  << static_cast<double>(r.volume.total())
                         / static_cast<double>(mp.volume.total())
                  << '\n';
    }
    return 0;
}
