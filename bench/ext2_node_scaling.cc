/**
 * @file
 * EXT2 — extension experiment: strong scaling across machine sizes.
 *
 * The paper fixes the machine at 32 nodes; this extension holds the
 * EM3D problem constant and grows the mesh from 8 to 64 nodes. Two
 * effects compound against shared memory as the machine grows: the
 * per-node work shrinks (barriers amortize worse) and the average hop
 * count rises (round-trips stretch), while one-way message passing
 * only pays the second, mildly.
 */

#include <chrono>
#include <cstring>
#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);

    // --threads N runs every simulation on the intra-run window
    // engine (sim/parallel.hh). Simulated results are bit-identical
    // at any thread count, so the cycle columns cannot change; the
    // wall column is what moves, and only on hosts with spare
    // hardware threads.
    int threads = 1;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--threads") == 0)
            threads = std::max(1, std::atoi(argv[i + 1]));

    struct Shape
    {
        int x, y;
    };
    const std::vector<Shape> shapes = {{4, 2}, {4, 4}, {8, 4}, {8, 8}};

    std::cout << "EXT2: strong scaling, fixed EM3D problem";
    if (threads > 1)
        std::cout << " (intra-run threads=" << threads << ")";
    std::cout << "\n\n";
    std::cout << std::left << std::setw(10) << "nodes" << std::right
              << std::setw(12) << "SM" << std::setw(12) << "MP-I"
              << std::setw(12) << "SM spdup" << std::setw(12)
              << "MP spdup" << std::setw(12) << "wall (s)" << '\n';

    double sm_base = 0.0, mp_base = 0.0;
    for (const Shape &sh : shapes) {
        apps::Em3d::Params p = bench::em3dParams(scale);
        p.graph.nprocs = sh.x * sh.y;

        MachineConfig cfg;
        cfg.meshX = sh.x;
        cfg.meshY = sh.y;

        core::RunSpec sm;
        sm.machine = cfg;
        sm.mechanism = core::Mechanism::SharedMemory;
        sm.threads = threads;
        core::RunSpec mp = sm;
        mp.mechanism = core::Mechanism::MpInterrupt;

        const auto factory = apps::Em3d::factory(p);
        const auto t0 = std::chrono::steady_clock::now();
        const double rs = core::runApp(factory, sm).runtimeCycles;
        const double rm = core::runApp(factory, mp).runtimeCycles;
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (sm_base == 0.0) {
            sm_base = rs;
            mp_base = rm;
        }
        std::cout << std::left << std::setw(10) << sh.x * sh.y
                  << std::right << std::fixed << std::setprecision(0)
                  << std::setw(12) << rs << std::setw(12) << rm
                  << std::setprecision(2) << std::setw(12)
                  << sm_base / rs << std::setw(12) << mp_base / rm
                  << std::setw(12) << wall << '\n';
    }
    std::cout << "\n(speedups are relative to the 8-node run; ideal "
                 "at 64 nodes would be 8.0.)\n";
    return 0;
}
