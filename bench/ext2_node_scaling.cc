/**
 * @file
 * EXT2 — extension experiment: strong scaling across machine sizes.
 *
 * The paper fixes the machine at 32 nodes; this extension holds the
 * EM3D problem constant and grows the mesh from 8 to 64 nodes. Two
 * effects compound against shared memory as the machine grows: the
 * per-node work shrinks (barriers amortize worse) and the average hop
 * count rises (round-trips stretch), while one-way message passing
 * only pays the second, mildly.
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);

    struct Shape
    {
        int x, y;
    };
    const std::vector<Shape> shapes = {{4, 2}, {4, 4}, {8, 4}, {8, 8}};

    std::cout << "EXT2: strong scaling, fixed EM3D problem\n\n";
    std::cout << std::left << std::setw(10) << "nodes" << std::right
              << std::setw(12) << "SM" << std::setw(12) << "MP-I"
              << std::setw(12) << "SM spdup" << std::setw(12)
              << "MP spdup" << '\n';

    double sm_base = 0.0, mp_base = 0.0;
    for (const Shape &sh : shapes) {
        apps::Em3d::Params p = bench::em3dParams(scale);
        p.graph.nprocs = sh.x * sh.y;

        MachineConfig cfg;
        cfg.meshX = sh.x;
        cfg.meshY = sh.y;

        core::RunSpec sm;
        sm.machine = cfg;
        sm.mechanism = core::Mechanism::SharedMemory;
        core::RunSpec mp = sm;
        mp.mechanism = core::Mechanism::MpInterrupt;

        const auto factory = apps::Em3d::factory(p);
        const double rs = core::runApp(factory, sm).runtimeCycles;
        const double rm = core::runApp(factory, mp).runtimeCycles;
        if (sm_base == 0.0) {
            sm_base = rs;
            mp_base = rm;
        }
        std::cout << std::left << std::setw(10) << sh.x * sh.y
                  << std::right << std::fixed << std::setprecision(0)
                  << std::setw(12) << rs << std::setw(12) << rm
                  << std::setprecision(2) << std::setw(12)
                  << sm_base / rs << std::setw(12) << mp_base / rm
                  << '\n';
    }
    std::cout << "\n(speedups are relative to the 8-node run; ideal "
                 "at 64 nodes would be 8.0.)\n";
    return 0;
}
