/**
 * @file
 * Throughput of the farm work-queue protocol (src/exp/queue.hh): how
 * many enqueue -> claim -> complete round trips per second the
 * filesystem rename-based state machine sustains, plus the cost of a
 * reap pass over a fully leased queue. The protocol's overhead bounds
 * the granularity at which distributing a sweep pays off: a job worth
 * farming must simulate for much longer than one protocol round trip.
 *
 *   farm_queue_bench [--jobs N] [--dir D]
 *
 * Defaults: 200 jobs under a scratch directory in $TMPDIR. This is a
 * plain wall-clock bench; run it from a Release build for meaningful
 * numbers (any build type is fine for smoke).
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include <unistd.h>

#include "exp/queue.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    namespace fs = std::filesystem;
    using clk = std::chrono::steady_clock;

    int jobs = 200;
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            dir = argv[++i];
    }
    if (jobs < 1)
        jobs = 1;
    if (dir.empty())
        dir = (fs::temp_directory_path()
               / ("alewife-farm-bench-" + std::to_string(::getpid())))
                  .string();
    fs::remove_all(dir);

    exp::FarmTuning tuning;
    exp::WorkQueue q(dir, "bench", tuning);
    if (!q.initDirs()) {
        std::cerr << "cannot create queue under " << dir << "\n";
        return 1;
    }

    exp::FarmWorkload w;
    w.app = "stream";
    auto secondsSince = [](clk::time_point t0) {
        return std::chrono::duration<double>(clk::now() - t0).count();
    };

    std::cout << "farm queue protocol throughput (" << jobs
              << " jobs under " << dir << ")\n\n";

    auto t0 = clk::now();
    for (int i = 0; i < jobs; ++i) {
        exp::FarmJob job;
        job.id = i;
        job.workload = w;
        job.appKey = w.appKey();
        job.spec.mechanism = core::Mechanism::SharedMemory;
        if (!q.enqueue(job)) {
            std::cerr << "enqueue failed at job " << i << "\n";
            return 1;
        }
    }
    const double enqueueSec = secondsSince(t0);

    t0 = clk::now();
    int completed = 0;
    while (auto job = q.claim(exp::farmNowMs())) {
        q.complete(*job, exp::farmNowMs());
        ++completed;
    }
    const double drainSec = secondsSince(t0);
    if (completed != jobs) {
        std::cerr << "drained " << completed << " of " << jobs
                  << " jobs\n";
        return 1;
    }

    // Reap cost over a fully leased queue (every lease fresh: the
    // pass inspects all of them and reclaims none).
    for (int i = 0; i < jobs; ++i) {
        exp::FarmJob job;
        job.id = i;
        job.workload = w;
        job.appKey = w.appKey();
        job.spec.mechanism = core::Mechanism::SharedMemory;
        q.enqueue(job);
    }
    const std::int64_t now = exp::farmNowMs();
    while (q.claim(now))
        ;
    t0 = clk::now();
    const exp::ReapStats stats = q.reapExpired(now);
    const double reapSec = secondsSince(t0);

    std::cout << "enqueue:    " << jobs / enqueueSec << " jobs/s\n"
              << "claim+done: " << jobs / drainSec << " jobs/s\n"
              << "reap pass:  " << reapSec * 1e3 << " ms over " << jobs
              << " live leases (" << stats.reclaims << " reclaimed)\n";

    fs::remove_all(dir);
    return 0;
}
