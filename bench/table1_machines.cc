/**
 * @file
 * TAB1 — regenerate Table 1: parameter estimates for various
 * 32-processor multiprocessors.
 */

#include <iostream>

#include "core/report.hh"

int
main()
{
    alewife::core::printTable1(std::cout);
    return 0;
}
