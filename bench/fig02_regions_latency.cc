/**
 * @file
 * FIG2 — map the conceptual regions of Figure 2: runtime as network
 * latency varies, for shared memory (round-trip, stalls under
 * sequential consistency), shared memory with prefetch (partial
 * hiding), and message passing (one-way, best hiding).
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    const MachineConfig base;

    apps::Stream::Params sp;
    sp.valuesPerIter = 64;
    sp.iters = scale == bench::Scale::Quick ? 3 : 6;
    sp.computePerValue = 12.0;

    std::vector<double> lat = {10, 20, 40, 80, 160, 320};
    if (scale == bench::Scale::Quick)
        lat = {10, 80, 320};

    std::cout << "FIG2: regions of performance as network latency "
                 "varies (stream microbenchmark, ideal network)\n\n";

    const auto series = core::idealLatencySweep(
        apps::Stream::factory(sp), base,
        {core::Mechanism::SharedMemory,
         core::Mechanism::SharedMemoryPrefetch,
         core::Mechanism::MpInterrupt},
        lat);
    core::printSeries(std::cout, "STREAM", "latency (cyc)", series);

    std::cout << "slopes (cycles of runtime per cycle of latency, "
                 "last segment):\n";
    for (const auto &s : series) {
        const auto &p = s.points;
        const double slope =
            (p.back().result.runtimeCycles
             - p[p.size() - 2].result.runtimeCycles)
            / (p.back().x - p[p.size() - 2].x);
        std::cout << "  " << core::mechanismShortName(s.mech) << ": "
                  << std::fixed << std::setprecision(1) << slope
                  << '\n';
    }
    return 0;
}
