/**
 * @file
 * ABL1 — ablation of the endpoint-occupancy effect (Section 5.1).
 *
 * The paper observes that shared memory tolerates more network volume
 * than message passing because the CMMU drains protocol traffic far
 * faster than software handlers drain messages. We sweep the NI input
 * queue depth and the interrupt cost: as handlers slow down or the
 * queue shrinks, message passing congests (NI-full stalls rise) while
 * shared-memory performance is unchanged.
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);

    std::cout << "ABL1: endpoint occupancy — NI queue depth and "
                 "interrupt cost vs congestion (EM3D, MP-I)\n\n";
    std::cout << std::left << std::setw(12) << "ni-slots"
              << std::setw(12) << "int-cost" << std::right
              << std::setw(12) << "runtime" << std::setw(12)
              << "niFull" << std::setw(12) << "rejects" << '\n';

    const auto factory = apps::Em3d::factory(bench::em3dParams(scale));
    for (int slots : {16, 8, 4, 2}) {
        for (double icost : {42.0, 120.0}) {
            MachineConfig cfg;
            cfg.niInputQueueSlots = slots;
            cfg.amInterruptCycles = icost;
            core::RunSpec spec;
            spec.machine = cfg;
            spec.mechanism = core::Mechanism::MpInterrupt;
            const auto r = core::runApp(factory, spec);
            std::cout << std::left << std::setw(12) << slots
                      << std::setw(12) << icost << std::right
                      << std::fixed << std::setprecision(0)
                      << std::setw(12) << r.runtimeCycles
                      << std::setw(12) << r.counters.niQueueFullStalls
                      << std::setw(12) << r.counters.packetsInjected
                      << '\n';
        }
    }

    // Shared memory under the same knobs: unaffected (protocol traffic
    // is drained by the CMMU, not the processor).
    std::cout << "\nshared memory under the same knobs:\n";
    for (int slots : {16, 2}) {
        MachineConfig cfg;
        cfg.niInputQueueSlots = slots;
        core::RunSpec spec;
        spec.machine = cfg;
        spec.mechanism = core::Mechanism::SharedMemory;
        const auto r = core::runApp(factory, spec);
        std::cout << "  ni-slots " << slots << ": runtime "
                  << std::fixed << std::setprecision(0)
                  << r.runtimeCycles << " cycles\n";
    }
    return 0;
}
