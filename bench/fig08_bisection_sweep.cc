/**
 * @file
 * FIG8 — regenerate Figure 8: execution time (processor cycles) versus
 * bisection bandwidth, emulated by injecting 64-byte I/O cross-traffic
 * over the mesh bisection exactly as in Section 5.2. Alewife's native
 * point is 18 bytes/cycle; the paper's finding is that shared-memory
 * performance degrades much faster than message passing as bisection
 * shrinks, producing a crossover.
 *
 * --predict additionally overlays the analytic prediction of the same
 * curves from ONE instrumented run per mechanism (src/obs/predict.hh),
 * with per-point error and MAPE against the measured sweep.
 */

#include <chrono>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);
    const bool predict = bench::parsePredict(argc, argv);
    const MachineConfig base;

    std::vector<double> bisections = {18.0, 14.0, 10.0, 7.0, 5.0, 3.5};
    if (scale == bench::Scale::Quick)
        bisections = {18.0, 10.0, 5.0};

    std::cout << "FIG8: runtime (cycles) vs effective bisection "
                 "bandwidth (bytes/cycle), 64-byte cross-traffic\n\n";

    for (const auto &[name, factory] : bench::paperApps(scale)) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto series = core::bisectionSweep(
            factory, base, bench::allMechs(), bisections, 64,
            engine.options(name));
        const double sweepMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        core::printSeries(std::cout, name, "bisection B/cyc", series);

        if (predict) {
            bench::printPredictedSeries(
                std::cout, factory, base, series, bisections,
                [&](double b) {
                    obs::PredictTarget t;
                    t.machine = base;
                    t.crossBytesPerCycle =
                        base.bisectionBytesPerCycle() - b;
                    t.crossMessageBytes = 64;
                    return t;
                },
                sweepMs);
        }

        // Report the SM-vs-MP crossover, if the sweep reaches it.
        const auto &sm = series[0].points;
        const auto &mp = series[2].points;
        double crossover = -1.0;
        for (std::size_t i = 0; i < sm.size(); ++i) {
            if (sm[i].result.runtimeCycles
                > mp[i].result.runtimeCycles) {
                crossover = sm[i].x;
            }
        }
        if (crossover > 0.0) {
            std::cout << "  SM falls behind MP-I at <= " << crossover
                      << " bytes/cycle\n";
        } else {
            std::cout << "  no SM/MP crossover in this range\n";
        }
        std::cout << '\n';
    }
    return 0;
}
