/**
 * @file
 * EXT1 — extension experiment: place the Table 1 machine gallery on
 * the paper's sensitivity surface.
 *
 * Section 5 of the paper interprets its sweeps by "referring back to
 * Table 1": machines with little bisection per processor-cycle or long
 * relative latencies sit in the region where shared memory suffers.
 * This bench closes the loop by *running* EM3D under shared memory and
 * message passing on a MachineConfig fitted to each gallery machine's
 * clock, bisection, and one-way latency.
 */

#include <iomanip>
#include <iostream>

#include "bench_common.hh"
#include "machine/gallery.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    apps::Em3d::Params p = bench::em3dParams(scale);
    const auto factory = apps::Em3d::factory(p);

    std::cout << "EXT1: EM3D under SM and MP-I on Table 1 design "
                 "points\n\n";
    std::cout << std::left << std::setw(16) << "machine" << std::right
              << std::setw(10) << "B/cycle" << std::setw(10)
              << "net-lat" << std::setw(12) << "SM" << std::setw(12)
              << "MP-I" << std::setw(10) << "SM/MP" << '\n';

    for (const auto &entry : galleryMachines()) {
        if (!entry.bisectionMBps || !entry.netLatencyCycles)
            continue;
        core::RunSpec sm;
        sm.machine = entry.toConfig();
        sm.mechanism = core::Mechanism::SharedMemory;
        core::RunSpec mp = sm;
        mp.mechanism = core::Mechanism::MpInterrupt;

        const auto rs = core::runApp(factory, sm);
        const auto rm = core::runApp(factory, mp);
        std::cout << std::left << std::setw(16) << entry.name
                  << std::right << std::fixed << std::setprecision(1)
                  << std::setw(10) << *entry.bytesPerCycle
                  << std::setw(10) << *entry.netLatencyCycles
                  << std::setprecision(0) << std::setw(12)
                  << rs.runtimeCycles << std::setw(12)
                  << rm.runtimeCycles << std::setprecision(2)
                  << std::setw(10)
                  << rs.runtimeCycles / rm.runtimeCycles << '\n';
    }
    std::cout << "\nThe SM/MP column orders the machines the way the "
                 "paper's Table 2 discussion predicts:\nbandwidth-rich,"
                 " low-latency designs (J-Machine, Paragon, T3D) keep "
                 "shared memory close;\nlatency-heavy designs (T3E, "
                 "FLASH, Origin, CM5) push the advantage to message "
                 "passing.\n";
    return 0;
}
