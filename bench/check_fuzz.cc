/**
 * @file
 * CHECK_FUZZ — schedule-perturbation fuzz harness for the invariant
 * auditor (src/check/). Runs the stress workload (optionally the paper
 * apps too) across a seed x perturbation-mode matrix with a collecting
 * InvariantAuditor attached, and reports the first violated invariant
 * with the exact seed/mode needed to replay it.
 *
 * Default corpus: 16 seeds x 4 modes (none / tiebreak / jitter / both)
 * = 64 audited runs. Exit status is nonzero if any run violated an
 * invariant or failed numeric verification.
 *
 * Flags:
 *   --seeds N        number of seeds (default 16)
 *   --seed-base S    first seed (default 1)
 *   --modes LIST     comma list from {none,tiebreak,jitter,both}
 *   --apps LIST      comma list from {stress,stream}; default stress
 *   --ops N          stress script length per node (default 120)
 *   --inject-bug     demo: skip one invalidate and show the auditor
 *                    catching it (exits zero when it IS caught)
 *
 * Reproducing a violation: rerun with --seed-base <seed> --seeds 1
 * --modes <mode>; runs are single-threaded and bit-deterministic per
 * (seed, mode), so the failure replays exactly.
 */

#include <cstdint>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/stream.hh"
#include "apps/stress.hh"
#include "check/auditor.hh"
#include "core/runner.hh"
#include "obs/recorder.hh"

namespace {

using namespace alewife;

struct Mode
{
    std::string name;
    bool tieBreak = false;
    double jitter = 0.0;
};

Mode
modeByName(const std::string &name)
{
    if (name == "none")
        return {"none", false, 0.0};
    if (name == "tiebreak")
        return {"tiebreak", true, 0.0};
    if (name == "jitter")
        return {"jitter", false, 0.25};
    if (name == "both")
        return {"both", true, 0.25};
    std::cerr << "unknown mode: " << name << '\n';
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

core::AppFactory
makeApp(const std::string &name, std::uint64_t seed, int ops)
{
    if (name == "stress") {
        apps::Stress::Params p;
        p.counters = 8;
        p.opsPerNode = ops;
        p.nprocs = 32; // default MachineConfig mesh
        p.seed = seed;
        return apps::Stress::factory(p);
    }
    if (name == "stream") {
        apps::Stream::Params p;
        p.valuesPerIter = 32;
        p.iters = 4;
        p.seed = seed;
        return apps::Stream::factory(p);
    }
    std::cerr << "unknown app: " << name << '\n';
    std::exit(2);
}

/** Deliberately break the protocol and prove the auditor notices. */
int
injectBugDemo(std::uint64_t seed)
{
    std::cout << "Injecting bug: one cache skips an invalidate but "
                 "still acks it (seed " << seed << ")\n";
    apps::Stress::Params p;
    p.counters = 8;
    p.opsPerNode = 120;
    p.nprocs = 32;
    p.seed = seed;
    apps::Stress app(p);

    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Polling);
    check::InvariantAuditor auditor(
        {.abortOnViolation = false, .maxViolations = 8});
    auditor.attach(m);
    // Ride a flight recorder next to the auditor so the demo also
    // shows the crash-forensics path: the dump holds the protocol
    // events leading up to the violation.
    obs::RecorderOptions ro;
    ro.flightEvents = 4096;
    ro.flightOut = "check-fuzz-flight.dump";
    obs::Recorder rec(ro, m.nodes());
    rec.attach(m);
    for (int i = 0; i < m.nodes(); ++i) {
        coh::CoherenceController::DebugFaults f;
        f.skipInvalidate = true;
        m.cohAt(i).debugInjectFaults(f);
    }
    app.setup(m, core::Mechanism::SharedMemory);
    m.run([&app](proc::Ctx &ctx) { return app.program(ctx); });
    auditor.finalize();

    if (auditor.clean()) {
        std::cout << "FAIL: injected bug was NOT caught\n";
        return 1;
    }
    const auto &v = auditor.violations().front();
    const std::string flightPath = rec.dumpFlight();
    std::cout << "caught: " << v.invariant << " at tick " << v.tick
              << "\n  " << v.detail
              << "\n  flight recorder dump: " << flightPath << " ("
              << rec.flight()->size() << " events)"
              << "\n  replay: ./build/bench/check_fuzz --inject-bug"
              << " --seed-base " << seed << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int seeds = 16;
    std::uint64_t seedBase = 1;
    int ops = 120;
    std::vector<std::string> modeNames = {"none", "tiebreak", "jitter",
                                          "both"};
    std::vector<std::string> appNames = {"stress"};
    bool injectBug = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds")
            seeds = std::stoi(next());
        else if (arg == "--seed-base")
            seedBase = std::stoull(next());
        else if (arg == "--ops")
            ops = std::stoi(next());
        else if (arg == "--modes")
            modeNames = splitList(next());
        else if (arg == "--apps")
            appNames = splitList(next());
        else if (arg == "--inject-bug")
            injectBug = true;
        else {
            std::cerr << "usage: check_fuzz [--seeds N] [--seed-base S]"
                         " [--ops N] [--modes a,b] [--apps a,b]"
                         " [--inject-bug]\n";
            return 2;
        }
    }

    if (injectBug)
        return injectBugDemo(seedBase);

    int runs = 0, bad = 0;
    for (const std::string &appName : appNames) {
        for (int s = 0; s < seeds; ++s) {
            const std::uint64_t seed = seedBase + s;
            for (const std::string &modeName : modeNames) {
                const Mode mode = modeByName(modeName);
                core::RunSpec spec;
                spec.perturb.seed = seed;
                spec.perturb.tieBreak = mode.tieBreak;
                spec.perturb.hopJitterFrac = mode.jitter;

                check::InvariantAuditor auditor(
                    {.abortOnViolation = false, .maxViolations = 4});
                const auto r =
                    core::runApp(makeApp(appName, seed, ops), spec,
                                 /*verify_fatal=*/false, &auditor);
                ++runs;

                const bool ok = r.verified && auditor.clean();
                if (!ok) {
                    ++bad;
                    std::cout << "VIOLATION app=" << appName
                              << " seed=" << seed
                              << " mode=" << modeName << '\n';
                    if (!r.verified) {
                        std::cout << "  checksum " << r.checksum
                                  << " != reference " << r.reference
                                  << '\n';
                    }
                    for (const auto &v : auditor.violations()) {
                        std::cout << "  " << v.invariant << " at tick "
                                  << v.tick << ": " << v.detail << '\n';
                    }
                    std::cout << "  replay: ./build/bench/check_fuzz"
                              << " --apps " << appName << " --seeds 1"
                              << " --seed-base " << seed << " --modes "
                              << modeName << " --ops " << ops << '\n';
                }
            }
        }
    }

    std::cout << "check_fuzz: " << runs << " audited runs, " << bad
              << " violations\n";
    return bad == 0 ? 0 : 1;
}
