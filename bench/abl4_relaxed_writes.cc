/**
 * @file
 * ABL4 — extension: relaxed-consistency write buffering.
 *
 * Section 2 of the paper names relaxed memory models as the other
 * technique (besides prefetching) for tolerating latency under shared
 * memory. This ablation measures it directly: one producer scatters N
 * stores to remote lines, either with sequentially consistent writes
 * (stall per store) or with non-blocking writes retired through a
 * small write window plus a final release fence, across emulated
 * network latencies.
 */

#include <iomanip>
#include <iostream>

#include "machine/machine.hh"

using namespace alewife;

namespace {

struct Probe
{
    Addr arr = 0;
    int stores = 64;
    bool relaxed = false;
    double cycles = 0.0;
};

sim::Thread
producer(proc::Ctx &ctx, Probe &pr)
{
    if (ctx.self() != 0)
        co_return;
    const Tick t0 = ctx.proc().localNow();
    for (int i = 0; i < pr.stores; ++i) {
        // One store per remote line, round-robin over homes 1..N-1.
        const Addr a = pr.arr + static_cast<Addr>(i) * 16;
        if (pr.relaxed)
            co_await ctx.writeNBD(a, 1.5 * i);
        else
            co_await ctx.writeD(a, 1.5 * i);
        co_await ctx.compute(10);
    }
    if (pr.relaxed)
        co_await ctx.fence();
    pr.cycles = ticksToCycles(ctx.proc().localNow() - t0);
}

double
run(double latency, bool relaxed, int window)
{
    MachineConfig cfg;
    cfg.idealNet = true;
    cfg.idealNetLatencyCycles = latency;
    cfg.maxOutstandingWrites = window;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Probe pr;
    pr.relaxed = relaxed;
    pr.arr = m.mem().alloc(
        static_cast<std::uint64_t>(pr.stores) * 2,
        mem::HomePolicy::Interleaved, 0, "abl4");
    m.run([&pr](proc::Ctx &ctx) { return producer(ctx, pr); });

    // Writes must all have retired to memory.
    for (int i = 0; i < pr.stores; ++i) {
        const double v =
            m.debugDouble(pr.arr + static_cast<Addr>(i) * 16);
        if (v != 1.5 * i) {
            std::cerr << "verification failed at " << i << "\n";
            std::exit(1);
        }
    }
    return pr.cycles;
}

} // namespace

int
main()
{
    std::cout << "ABL4: sequentially consistent vs non-blocking "
                 "writes (64 remote stores + fence)\n\n";
    std::cout << std::left << std::setw(14) << "latency" << std::right
              << std::setw(12) << "SC" << std::setw(12) << "NB(w=4)"
              << std::setw(12) << "NB(w=16)" << std::setw(12)
              << "speedup" << '\n';

    for (double lat : {15.0, 50.0, 100.0, 200.0}) {
        const double sc = run(lat, false, 4);
        const double nb4 = run(lat, true, 4);
        const double nb16 = run(lat, true, 16);
        std::cout << std::left << std::setw(14) << lat << std::right
                  << std::fixed << std::setprecision(0) << std::setw(12)
                  << sc << std::setw(12) << nb4 << std::setw(12)
                  << nb16 << std::setw(12) << std::setprecision(2)
                  << sc / nb16 << '\n';
    }
    std::cout << "\nNon-blocking writes overlap store round-trips, "
                 "recovering most of the latency a sequentially\n"
                 "consistent processor exposes — the relaxed-"
                 "consistency effect the paper's Section 2 describes.\n";
    return 0;
}
