/**
 * @file
 * EXT3 — extension experiment: graph analytics under bandwidth and
 * latency variation.
 *
 * The paper's workloads exchange values on static, precomputed
 * schedules; graph analytics adds irregular point-to-point traffic
 * whose volume and skew depend on the graph family. This experiment
 * sweeps mechanism x network latency x link bandwidth x graph family
 * for two traffic extremes of the family — BFS (sparse, frontier-
 * driven bursts) and push PageRank (dense, one message per cross edge
 * every round) — through the parallel sweep engine, with optional
 * crash tolerance (--ckpt-dir).
 *
 * Each row also reports the analytic communication-cost prediction of
 * the per-edge max-rate/queue-aware model (src/apps/graph/cost_model,
 * after arXiv:1806.02030) evaluated on the measured per-phase traffic
 * of a base-configuration run: traffic is deterministic and
 * config-independent, so one base run per (family, app, mechanism)
 * prices every latency/bandwidth variant.
 *
 * Usage: ext3_graph_sweep [--quick|--full] [--jobs N]
 *                         [--cache-dir D] [--ckpt-dir D]
 */

#include <cstring>
#include <iomanip>

#include "bench_common.hh"
#include "exp/sweep_engine.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    using workload::GraphFamily;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);

    std::string ckptDir;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--ckpt-dir") == 0)
            ckptDir = argv[i + 1];
    }

    const std::vector<GraphFamily> families = {
        GraphFamily::Uniform, GraphFamily::RMat, GraphFamily::Grid2d};
    const std::vector<std::string> appNames = {"bfs",
                                               "pagerank-push"};
    struct NetPoint
    {
        double hopNs, linkMBps;
    };
    const std::vector<NetPoint> net = {
        {40.0, 45.0},   // Alewife baseline
        {400.0, 45.0},  // 10x hop latency
        {40.0, 9.0},    // 1/5 link bandwidth
        {400.0, 9.0},   // both
    };
    const auto mechs = bench::allMechs();

    std::cout << "EXT3: graph analytics vs latency and bandwidth\n\n";
    std::cout << std::left << std::setw(9) << "family" << std::setw(15)
              << "app" << std::setw(7) << "mech" << std::right
              << std::setw(8) << "hop ns" << std::setw(8) << "MB/s"
              << std::setw(12) << "cycles" << std::setw(12) << "pred"
              << std::setw(8) << "ratio" << '\n';

    for (const GraphFamily fam : families) {
        for (const std::string &name : appNames) {
            const auto p = bench::graphParams(scale, fam);
            const auto factory = apps::graph::makeApp(name, p);

            // One base run per mechanism collects the deterministic
            // per-phase traffic the analytic model prices.
            std::vector<apps::graph::TrafficStats> traffic;
            double valuesPerMsg = 1.0;
            for (const core::Mechanism m : mechs) {
                auto app = factory();
                auto &gapp =
                    dynamic_cast<apps::graph::GraphAppBase &>(*app);
                core::RunSpec spec;
                spec.mechanism = m;
                core::runApp(*app, spec, true);
                traffic.push_back(gapp.traffic());
                valuesPerMsg = gapp.costModel().valuesPerMsg;
            }

            // The full matrix goes through the sweep engine:
            // parallel, cached, crash-tolerant.
            std::vector<exp::Job> jobs;
            for (const NetPoint &n : net) {
                for (const core::Mechanism m : mechs) {
                    exp::Job j;
                    j.app = factory;
                    j.spec.machine.hopNs = n.hopNs;
                    j.spec.machine.linkMBps = n.linkMBps;
                    j.spec.mechanism = m;
                    j.appKey = apps::graph::catalogKey(name, p);
                    jobs.push_back(std::move(j));
                }
            }
            auto opts = engine.options(
                "ext3-" + name + "-"
                + workload::graphFamilyName(fam));
            opts.ckptDir = ckptDir;
            exp::SweepEngine eng(opts);
            const auto results = eng.run(jobs);

            std::size_t i = 0;
            for (const NetPoint &n : net) {
                for (std::size_t mi = 0; mi < mechs.size(); ++mi) {
                    MachineConfig cfg;
                    cfg.hopNs = n.hopNs;
                    cfg.linkMBps = n.linkMBps;
                    const auto model =
                        apps::graph::CostModel::fromConfig(
                            cfg, valuesPerMsg);
                    const double pred =
                        model.predictCommCycles(traffic[mi]);
                    const double cyc = results[i].runtimeCycles;
                    std::cout
                        << std::left << std::setw(9)
                        << workload::graphFamilyName(fam)
                        << std::setw(15) << name << std::setw(7)
                        << core::mechanismShortName(mechs[mi])
                        << std::right << std::fixed
                        << std::setprecision(0) << std::setw(8)
                        << n.hopNs << std::setw(8) << n.linkMBps
                        << std::setw(12) << cyc << std::setw(12)
                        << pred << std::setprecision(2)
                        << std::setw(8) << pred / cyc << '\n';
                    ++i;
                }
            }
        }
        std::cout << '\n';
    }
    std::cout << "(pred = analytic comm-cycle estimate from measured "
                 "per-phase traffic;\n ratio < 1 expected — the model "
                 "prices communication only.)\n";
    return 0;
}
