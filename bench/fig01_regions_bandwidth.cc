/**
 * @file
 * FIG1 — map the conceptual regions of Figure 1: runtime as bisection
 * bandwidth varies, for shared memory versus message passing on a
 * producer-consumer microbenchmark.
 *
 * The three expected regions: latency hiding (flat), latency dominated
 * (linear growth), congestion dominated (super-linear growth). Shared
 * memory leaves the flat region earlier because it moves several times
 * the bytes.
 */

#include <iomanip>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    const MachineConfig base;

    apps::Stream::Params sp;
    sp.valuesPerIter = 96;
    sp.iters = scale == bench::Scale::Quick ? 3 : 6;
    sp.computePerValue = 8.0; // little slackness: bandwidth matters

    std::vector<double> bisections = {18, 14, 10, 7, 5, 3, 2};
    if (scale == bench::Scale::Quick)
        bisections = {18, 7, 2};

    std::cout << "FIG1: regions of performance as bisection bandwidth "
                 "varies (stream microbenchmark)\n\n";

    const auto series = core::bisectionSweep(
        apps::Stream::factory(sp), base,
        {core::Mechanism::SharedMemory, core::Mechanism::MpInterrupt,
         core::Mechanism::BulkTransfer},
        bisections, 64);
    core::printSeries(std::cout, "STREAM", "bisection B/cyc", series);

    // Region classification: relative growth between sweep points.
    std::cout << "region view (ratio to native-bisection runtime):\n";
    for (const auto &s : series) {
        std::cout << "  " << core::mechanismShortName(s.mech) << ":";
        const double baseline = s.points.front().result.runtimeCycles;
        for (const auto &pt : s.points) {
            std::cout << "  " << std::fixed << std::setprecision(2)
                      << pt.result.runtimeCycles / baseline;
        }
        std::cout << '\n';
    }
    return 0;
}
