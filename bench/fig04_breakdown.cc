/**
 * @file
 * FIG4 — regenerate Figure 4: execution-time breakdown of all four
 * applications under all five mechanisms on the unmodified Alewife
 * design point. Runtime is in processor cycles; the four columns are
 * the paper's compute / memory+NI-wait / message-overhead / sync split.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);
    const MachineConfig base;

    std::cout << "FIG4: execution-time breakdowns on Alewife ("
              << base.nodes() << " nodes, " << base.procMhz << " MHz)\n\n";

    for (const auto &[name, factory] : bench::paperApps(scale)) {
        const auto results = core::runAllMechanisms(
            factory, base, bench::allMechs(), engine.options(name));
        core::printBreakdownTable(std::cout, name, results);
        for (const auto &r : results)
            core::printCounters(std::cout, r);
        std::cout << '\n';
    }
    return 0;
}
