/**
 * @file
 * FIG3 — regenerate the Figure 3 cost table: measured shared-memory
 * miss penalties and active-message costs on the simulated Alewife,
 * next to the paper's published numbers.
 */

#include <iomanip>
#include <iostream>

#include "machine/machine.hh"

using namespace alewife;

namespace {

struct Probe
{
    Addr a = 0;
    double cycles = 0.0;
    int warm = -1;
    int sharers = 0;
};

double
measureRead(MachineConfig cfg, NodeId home, int warm_writer,
            int sharers)
{
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Probe pr;
    pr.a = m.mem().alloc(2, mem::HomePolicy::Fixed, home);
    pr.warm = warm_writer;
    pr.sharers = sharers;
    auto prog = [&pr](proc::Ctx &ctx) -> sim::Thread {
        if (ctx.self() == pr.warm) {
            co_await ctx.writeD(pr.a, 1.0);
        } else if (ctx.self() >= 2 && ctx.self() < 2 + pr.sharers) {
            co_await ctx.compute(100.0 * ctx.self());
            co_await ctx.read(pr.a);
        } else if (ctx.self() == 0) {
            co_await ctx.compute(9000);
            const Tick t0 = ctx.proc().localNow();
            co_await ctx.read(pr.a);
            pr.cycles = ticksToCycles(ctx.proc().localNow() - t0);
        }
        co_return;
    };
    m.run(prog);
    return pr.cycles;
}

double
measureWrite(MachineConfig cfg, NodeId home, int sharers)
{
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Probe pr;
    pr.a = m.mem().alloc(2, mem::HomePolicy::Fixed, home);
    pr.sharers = sharers;
    auto prog = [&pr](proc::Ctx &ctx) -> sim::Thread {
        if (ctx.self() >= 2 && ctx.self() < 2 + pr.sharers) {
            co_await ctx.read(pr.a);
        } else if (ctx.self() == 0) {
            co_await ctx.compute(9000);
            const Tick t0 = ctx.proc().localNow();
            co_await ctx.writeD(pr.a, 2.0);
            pr.cycles = ticksToCycles(ctx.proc().localNow() - t0);
        }
        co_return;
    };
    m.run(prog);
    return pr.cycles;
}

void
row(const char *what, double measured, const char *paper)
{
    std::cout << "  " << std::left << std::setw(34) << what
              << std::right << std::setw(9) << std::fixed
              << std::setprecision(1) << measured << std::setw(14)
              << paper << '\n';
}

} // namespace

int
main()
{
    MachineConfig cfg;
    std::cout << "FIG3: Alewife cost table — measured vs paper\n";
    std::cout << "  " << std::left << std::setw(34) << "operation"
              << std::right << std::setw(9) << "cycles" << std::setw(14)
              << "paper" << '\n';

    row("local read miss", measureRead(cfg, 0, -1, 0), "11");
    row("remote read miss, clean (1 hop)", measureRead(cfg, 1, -1, 0),
        "38-42");
    row("remote read miss, dirty", measureRead(cfg, 1, 5, 0), "63");
    row("remote write miss, unshared", measureWrite(cfg, 1, 0),
        "38-43");
    row("remote write miss, 2 parties", measureWrite(cfg, 1, 1), "66");
    row("remote write miss, 3 parties", measureWrite(cfg, 1, 2), "84");
    row("remote read, LimitLESS (11 shrs)",
        measureRead(cfg, 1, -1, 11), "425");
    row("remote write, LimitLESS (11 shrs)", measureWrite(cfg, 1, 11),
        "707");

    std::cout << "  " << std::left << std::setw(34)
              << "1-way 24B packet latency" << std::right
              << std::setw(9)
              << cfg.onewayLatencyCycles(
                     24, static_cast<int>(cfg.averageHops() + 0.5))
              << std::setw(14) << "15" << '\n';
    std::cout << "  " << std::left << std::setw(34)
              << "bisection bytes/cycle" << std::right << std::setw(9)
              << cfg.bisectionBytesPerCycle() << std::setw(14) << "18"
              << '\n';
    return 0;
}
