/**
 * @file
 * FIG5 — regenerate Figure 5: communication volume injected into the
 * network by each mechanism, broken into invalidates / requests /
 * headers / data. The headline shape: shared memory moves several
 * times the bytes of message passing on the same application, and
 * interrupts vs polling move identical volume.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);
    const MachineConfig base;

    std::cout << "FIG5: communication volume breakdowns\n\n";

    for (const auto &[name, factory] : bench::paperApps(scale)) {
        const auto results = core::runAllMechanisms(
            factory, base, bench::allMechs(), engine.options(name));
        core::printVolumeTable(std::cout, name, results);
        // The SM : MP volume ratio the paper highlights (up to ~6x).
        const double sm =
            static_cast<double>(results[0].volume.total());
        const double mp =
            static_cast<double>(results[2].volume.total());
        std::cout << "  SM/MP volume ratio: " << sm / mp << "\n\n";
    }
    return 0;
}
