/**
 * @file
 * FIG10 — regenerate Figure 10: network latencies emulated with the
 * context-switching trick — every remote access sees a uniform latency
 * on an infinite-bandwidth network. Shared-memory mechanisms sweep the
 * emulated latency; message-passing curves are plotted flat at the
 * real-machine value, exactly as the paper does ("for reference only").
 *
 * At ~100-cycle latency the paper recovers Chandra et al.'s result:
 * message passing about 2x faster than shared memory on EM3D.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace alewife;
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchEngine engine(argc, argv, scale);
    const MachineConfig base;

    std::vector<double> lat = {15, 30, 50, 100, 200, 400};
    if (scale == bench::Scale::Quick)
        lat = {15, 100, 400};

    std::cout << "FIG10: runtime (cycles) vs emulated uniform one-way "
                 "latency (cycles)\n\n";

    for (const auto &[name, factory] : bench::paperApps(scale)) {
        const auto series = core::idealLatencySweep(
            factory, base, bench::allMechs(), lat, engine.options(name));
        core::printSeries(std::cout, name, "ideal lat (cyc)", series);

        // The Chandra-et-al. checkpoint at ~100 cycles.
        for (std::size_t i = 0; i < lat.size(); ++i) {
            if (lat[i] == 100) {
                const double sm =
                    series[0].points[i].result.runtimeCycles;
                const double mp =
                    series[2].points[i].result.runtimeCycles;
                std::cout << "  at 100 cycles: SM/MP-I = " << sm / mp
                          << "x\n";
            }
        }
        std::cout << '\n';
    }
    return 0;
}
