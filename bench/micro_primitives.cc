/**
 * @file
 * Google-benchmark micro-measurements: wall-clock cost of simulating
 * the primitive operations (event dispatch, remote misses, active
 * messages, barriers) and the resulting simulated-vs-host throughput.
 * These are simulator-engineering numbers, not paper artifacts; they
 * exist so performance regressions in the simulator itself get caught.
 */

#include <benchmark/benchmark.h>

#include "machine/machine.hh"

using namespace alewife;

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [&sink]() { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

sim::Thread
missProgram(proc::Ctx &ctx, Addr base, int n)
{
    if (ctx.self() != 0)
        co_return;
    for (int i = 0; i < n; ++i)
        co_await ctx.read(base + static_cast<Addr>(i) * 16);
}

void
BM_RemoteReadMiss(benchmark::State &state)
{
    const int misses = 256;
    for (auto _ : state) {
        MachineConfig cfg;
        Machine m(cfg, proc::SyncStyle::SharedMemory,
                  msg::RecvMode::Interrupt);
        const Addr base = m.mem().alloc(
            static_cast<std::uint64_t>(misses) * 2,
            mem::HomePolicy::Fixed, 5, "bm");
        m.run([&](proc::Ctx &ctx) {
            return missProgram(ctx, base, misses);
        });
    }
    state.SetItemsProcessed(state.iterations() * misses);
}
BENCHMARK(BM_RemoteReadMiss);

sim::Thread
amProgram(proc::Ctx &ctx, msg::HandlerId h, int n)
{
    if (ctx.self() != 0)
        co_return;
    for (int i = 0; i < n; ++i)
        co_await ctx.send(5, h, {});
}

void
BM_ActiveMessage(benchmark::State &state)
{
    const int msgs = 256;
    for (auto _ : state) {
        MachineConfig cfg;
        Machine m(cfg, proc::SyncStyle::MessagePassing,
                  msg::RecvMode::Interrupt);
        const auto h = m.handlers().add([](msg::HandlerEnv &) {});
        m.run([&](proc::Ctx &ctx) {
            return amProgram(ctx, h, msgs);
        });
    }
    state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_ActiveMessage);

sim::Thread
barrierProgram(proc::Ctx &ctx, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ctx.barrier();
}

void
BM_Barrier(benchmark::State &state)
{
    const int rounds = 16;
    const bool sm = state.range(0) != 0;
    for (auto _ : state) {
        MachineConfig cfg;
        Machine m(cfg,
                  sm ? proc::SyncStyle::SharedMemory
                     : proc::SyncStyle::MessagePassing,
                  msg::RecvMode::Interrupt);
        m.run([&](proc::Ctx &ctx) {
            return barrierProgram(ctx, rounds);
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds);
    state.SetLabel(sm ? "shared-memory" : "message-passing");
}
BENCHMARK(BM_Barrier)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
