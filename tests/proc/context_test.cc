/**
 * @file
 * Tests for the Ctx programming API: fast paths, copy charging, poll
 * points, and the relaxed-consistency write window.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

TEST(Context, ChargeCopyUsesGatherScatterRate)
{
    MachineConfig cfg = smallConfig();
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    auto prog = [](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0)
            co_await ctx.chargeCopy(8); // 4 lines at 60 cycles
        co_return;
    };
    m.run(prog);
    EXPECT_NEAR(ticksToCycles(
                    m.procAt(0).breakdown().get(TimeCat::MsgOverhead)),
                240.0, 0.01);
}

TEST(Context, FlopsCostScalesWithConfig)
{
    MachineConfig cfg = smallConfig();
    cfg.cyclesPerFlop = 7.0;
    cfg.cyclesPerFlopSP = 2.0;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    auto prog = [](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            co_await ctx.computeFlops(10);   // 70 cycles
            co_await ctx.computeFlopsSP(10); // 20 cycles
        }
        co_return;
    };
    m.run(prog);
    EXPECT_NEAR(ticksToCycles(
                    m.procAt(0).breakdown().get(TimeCat::Compute)),
                90.0, 0.01);
}

TEST(Context, RepeatedHitsStayOnFastPath)
{
    MachineConfig cfg = smallConfig();
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 0);
    auto prog = [a](Ctx &ctx) -> sim::Thread {
        if (ctx.self() != 0)
            co_return;
        co_await ctx.read(a); // one local miss
        for (int i = 0; i < 200; ++i)
            co_await ctx.read(a); // then hits
    };
    m.run(prog);
    EXPECT_EQ(m.counters().cacheMisses, 1u);
    EXPECT_EQ(m.counters().cacheHits, 200u);
}

TEST(Context, PollPointIsNoopUnderInterrupts)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    auto prog = [](Ctx &ctx) -> sim::Thread {
        for (int i = 0; i < 10; ++i)
            co_await ctx.pollPoint();
        co_return;
    };
    m.run(prog);
    // No poll cost charged in interrupt mode.
    EXPECT_EQ(m.procAt(0).breakdown().get(TimeCat::MsgOverhead), 0u);
}

TEST(Context, PollPointDrainsUnderPolling)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Polling);
    struct St
    {
        msg::HandlerId h = -1;
        int got = 0;
    } st;
    st.h = m.handlers().add([&st](msg::HandlerEnv &) { ++st.got; });
    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            co_await ctx.send(1, st.h, {});
        } else if (ctx.self() == 1) {
            co_await ctx.compute(5000);
            co_await ctx.pollPoint();
        }
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(st.got, 1);
    EXPECT_GT(m.procAt(1).breakdown().get(TimeCat::MsgOverhead), 0u);
}

TEST(Context, NonBlockingWritesRetireThroughFence)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a =
        m.mem().alloc(16, mem::HomePolicy::Interleaved, 0, "nb");
    auto prog = [a](Ctx &ctx) -> sim::Thread {
        if (ctx.self() != 0)
            co_return;
        for (int i = 0; i < 8; ++i)
            co_await ctx.writeNB(a + 16 * i, 100 + i);
        co_await ctx.fence();
    };
    m.run(prog);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(m.debugWord(a + 16 * i), 100u + i);
}

TEST(Context, NonBlockingWritesOverlapLatency)
{
    // Same store stream, sequentially consistent vs relaxed: the
    // relaxed version must be substantially faster at high latency.
    auto run = [](bool relaxed) {
        MachineConfig cfg = smallConfig();
        cfg.idealNet = true;
        cfg.idealNetLatencyCycles = 100.0;
        Machine m(cfg, proc::SyncStyle::SharedMemory,
                  msg::RecvMode::Interrupt);
        const Addr a = m.mem().alloc(32, mem::HomePolicy::Interleaved,
                                     0, "nb2");
        struct Out
        {
            double cycles = 0.0;
        };
        static Out out;
        out = Out{};
        auto prog = [a, relaxed](Ctx &ctx) -> sim::Thread {
            if (ctx.self() != 0)
                co_return;
            const Tick t0 = ctx.proc().localNow();
            for (int i = 0; i < 16; ++i) {
                if (relaxed)
                    co_await ctx.writeNB(a + 16 * i, i);
                else
                    co_await ctx.write(a + 16 * i, i);
            }
            if (relaxed)
                co_await ctx.fence();
            out.cycles = ticksToCycles(ctx.proc().localNow() - t0);
        };
        m.run(prog);
        return out.cycles;
    };
    const double sc = run(false);
    const double nb = run(true);
    EXPECT_LT(nb, sc / 2.0);
}

TEST(Context, WindowLimitsOutstandingWrites)
{
    MachineConfig cfg = smallConfig();
    cfg.maxOutstandingWrites = 1; // effectively sequential
    cfg.idealNet = true;
    cfg.idealNetLatencyCycles = 100.0;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a =
        m.mem().alloc(16, mem::HomePolicy::Interleaved, 0, "nb3");
    auto prog = [a](Ctx &ctx) -> sim::Thread {
        if (ctx.self() != 0)
            co_return;
        for (int i = 0; i < 8; ++i)
            co_await ctx.writeNB(a + 16 * i, i);
        co_await ctx.fence();
    };
    const Tick finish = m.run(prog);
    // With window 1, each store still pays most of the round trip:
    // ~8 stores x ~200-cycle misses.
    EXPECT_GT(ticksToCycles(finish), 1200.0);
}

} // namespace
} // namespace alewife
