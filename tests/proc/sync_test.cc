/**
 * @file
 * Barrier and processor-accounting tests for both synchronization
 * styles.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

/** Nodes record a global sequence number at each barrier episode. */
sim::Thread
barrierProgram(Ctx &ctx, std::vector<std::vector<int>> &phases,
               int &stamp, int rounds)
{
    for (int r = 0; r < rounds; ++r) {
        // Skewed work before the barrier.
        co_await ctx.compute(100.0 * (ctx.self() + 1));
        phases[ctx.self()].push_back(stamp);
        co_await ctx.barrier();
        if (ctx.self() == 0)
            ++stamp; // only safe if the barrier really separates rounds
    }
    co_return;
}

void
checkBarrier(proc::SyncStyle style, msg::RecvMode mode)
{
    Machine m(smallConfig(), style, mode);
    std::vector<std::vector<int>> phases(m.nodes());
    int stamp = 0;
    const int rounds = 5;
    m.run([&](Ctx &ctx) {
        return barrierProgram(ctx, phases, stamp, rounds);
    });
    // Every node must have seen stamp == r in round r: nobody raced
    // ahead through a barrier.
    for (int n = 0; n < m.nodes(); ++n) {
        ASSERT_EQ(phases[n].size(), static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds; ++r)
            EXPECT_EQ(phases[n][r], r) << "node " << n;
    }
}

TEST(Barrier, SharedMemoryTreeBarrierSeparatesRounds)
{
    checkBarrier(proc::SyncStyle::SharedMemory,
                 msg::RecvMode::Interrupt);
}

TEST(Barrier, MessagePassingInterruptBarrier)
{
    checkBarrier(proc::SyncStyle::MessagePassing,
                 msg::RecvMode::Interrupt);
}

TEST(Barrier, MessagePassingPollingBarrier)
{
    checkBarrier(proc::SyncStyle::MessagePassing,
                 msg::RecvMode::Polling);
}

TEST(Barrier, SharedMemoryBarrierAvoidsLimitlessTraps)
{
    // The 4-ary flag tree keeps every line within the 5 hardware
    // pointers even on the full 32-node machine.
    Machine m(MachineConfig{}, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    std::vector<std::vector<int>> phases(m.nodes());
    int stamp = 0;
    m.run([&](Ctx &ctx) {
        return barrierProgram(ctx, phases, stamp, 3);
    });
    EXPECT_EQ(m.counters().limitlessTraps, 0u);
}

TEST(Barrier, WaitTimeIsAttributedToSync)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    auto prog = [](Ctx &ctx) -> sim::Thread {
        // Node 0 arrives very late; everyone else should accumulate
        // Sync time.
        if (ctx.self() == 0)
            co_await ctx.compute(50000);
        co_await ctx.barrier();
    };
    m.run(prog);
    const auto &bd = m.procAt(1).breakdown();
    EXPECT_GT(ticksToCycles(bd.get(TimeCat::Sync)), 30000.0);
    const auto &bd0 = m.procAt(0).breakdown();
    EXPECT_GT(ticksToCycles(bd0.get(TimeCat::Compute)), 49000.0);
}

TEST(Processor, ComputeIsAttributedToCompute)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    auto prog = [](Ctx &ctx) -> sim::Thread {
        co_await ctx.compute(123);
        co_await ctx.compute(877);
    };
    m.run(prog);
    for (int i = 0; i < m.nodes(); ++i) {
        EXPECT_NEAR(ticksToCycles(
                        m.procAt(i).breakdown().get(TimeCat::Compute)),
                    1000.0, 0.01);
    }
}

TEST(Processor, HandlerStealsCyclesFromComputeBlock)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    struct St
    {
        msg::HandlerId h = -1;
    } st;
    st.h = m.handlers().add([](msg::HandlerEnv &env) {
        env.charge(500); // expensive handler
    });
    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            co_await ctx.send(1, st.h, {});
        } else if (ctx.self() == 1) {
            co_await ctx.compute(10000);
        }
        co_return;
    };
    const Tick finish = m.run(prog);
    // Node 1's wall clock must exceed its compute by the handler cost.
    EXPECT_GT(ticksToCycles(m.procAt(1).localNow()), 10400.0);
    EXPECT_GT(ticksToCycles(
                  m.procAt(1).breakdown().get(TimeCat::MsgOverhead)),
              500.0);
    (void)finish;
}

TEST(Processor, RuntimeEqualsSlowestNode)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    auto prog = [](Ctx &ctx) -> sim::Thread {
        co_await ctx.compute(100.0 * (ctx.self() + 1));
    };
    const Tick finish = m.run(prog);
    EXPECT_NEAR(ticksToCycles(finish), 100.0 * m.nodes(), 1.0);
}

} // namespace
} // namespace alewife
