/**
 * @file
 * Tests for the contended 2D mesh.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "net/mesh.hh"

namespace alewife::net {
namespace {

MachineConfig
testConfig()
{
    MachineConfig c;
    c.meshX = 8;
    c.meshY = 4;
    return c;
}

std::unique_ptr<Packet>
makePkt(NodeId src, NodeId dst, std::uint32_t bytes)
{
    auto p = std::make_unique<Packet>();
    p->src = src;
    p->dst = dst;
    p->kind = PacketKind::CrossTraffic;
    p->addBytes(VolCat::Data, bytes);
    return p;
}

TEST(Mesh, HopCountIsManhattan)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    EXPECT_EQ(mesh.hopCount(0, 0), 0);
    EXPECT_EQ(mesh.hopCount(0, 7), 7);
    EXPECT_EQ(mesh.hopCount(0, 31), 10); // (7,3) from (0,0)
    EXPECT_EQ(mesh.hopCount(9, 10), 1);
}

TEST(Mesh, DeliversToSink)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    int got = 0;
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&](Packet &) { return ++got, true; });
    mesh.send(makePkt(0, 5, 24));
    eq.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(mesh.packetsDelivered(), 1u);
}

TEST(Mesh, LatencyMatchesModel)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    Tick arrival = 0;
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&](Packet &) { return arrival = eq.now(), true; });
    const int hops = mesh.hopCount(0, 5);
    mesh.send(makePkt(0, 5, 24));
    eq.run();
    const double expect = c.netFixedCycles() + hops * c.hopCycles()
                          + 24.0 / c.linkBytesPerCycle();
    EXPECT_NEAR(ticksToCycles(arrival), expect, 0.1);
}

TEST(Mesh, ContentionDelaysSecondPacket)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    std::vector<Tick> arrivals;
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&](Packet &) {
            arrivals.push_back(eq.now());
            return true;
        });
    // Two large packets on the same route back to back.
    mesh.send(makePkt(0, 7, 512));
    mesh.send(makePkt(0, 7, 512));
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    const Tick gap = arrivals[1] - arrivals[0];
    // The second must trail by at least one serialization time.
    EXPECT_GE(ticksToCycles(gap), 512.0 / c.linkBytesPerCycle() - 1.0);
}

TEST(Mesh, DisjointRoutesDoNotInterfere)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    std::vector<Tick> arrivals(c.nodes(), 0);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&, i](Packet &) {
            arrivals[i] = eq.now();
            return true;
        });
    mesh.send(makePkt(0, 1, 512));  // row 0
    mesh.send(makePkt(8, 9, 512));  // row 1 — different links
    eq.run();
    EXPECT_EQ(arrivals[1], arrivals[9]);
}

TEST(Mesh, RejectedDeliveryRetries)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    int attempts = 0;
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&](Packet &) { return ++attempts >= 3; });
    mesh.send(makePkt(0, 2, 24));
    eq.run();
    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(mesh.niRejects(), 2u);
    EXPECT_EQ(mesh.packetsDelivered(), 1u);
}

TEST(Mesh, IdealModeUsesUniformLatency)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    c.idealNet = true;
    c.idealNetLatencyCycles = 100.0;
    Mesh mesh(eq, c);
    std::vector<Tick> arrivals;
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&](Packet &) {
            arrivals.push_back(eq.now());
            return true;
        });
    mesh.send(makePkt(0, 1, 8));     // 1 hop
    mesh.send(makePkt(0, 31, 4096)); // 10 hops, huge
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], arrivals[1]);
    EXPECT_NEAR(ticksToCycles(arrivals[0]), 100.0, 0.01);
}

TEST(Mesh, VolumeAccountingByCategory)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [](Packet &) { return true; });
    auto p = std::make_unique<Packet>();
    p->src = 0;
    p->dst = 3;
    p->kind = PacketKind::Coherence;
    p->addBytes(VolCat::Headers, 8);
    p->addBytes(VolCat::Data, 16);
    mesh.send(std::move(p));
    eq.run();
    EXPECT_EQ(mesh.volume().get(VolCat::Headers), 8u);
    EXPECT_EQ(mesh.volume().get(VolCat::Data), 16u);
    EXPECT_EQ(mesh.volume().total(), 24u);
}

TEST(Mesh, CrossTrafficExcludedFromVolume)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [](Packet &) { return true; });
    auto p = makePkt(0, 3, 64);
    p->countInVolume = false;
    mesh.send(std::move(p));
    eq.run();
    EXPECT_EQ(mesh.volume().total(), 0u);
}

TEST(Mesh, BisectionBytesTracked)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [](Packet &) { return true; });
    mesh.send(makePkt(0, 7, 100));  // crosses the vertical cut
    mesh.send(makePkt(0, 1, 100));  // does not
    eq.run();
    EXPECT_EQ(mesh.bisectionBytes(), 100u);
}

TEST(Mesh, SameSourceDestinationPairStaysOrdered)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    std::vector<int> order;
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [&](Packet &p) {
            order.push_back(static_cast<int>(p.sizeBytes));
            return true;
        });
    // Different sizes would reorder in a latency-only model.
    mesh.send(makePkt(0, 7, 1024));
    mesh.send(makePkt(0, 7, 8));
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1024);
    EXPECT_EQ(order[1], 8);
}

} // namespace
} // namespace alewife::net
