/**
 * @file
 * Tests for the bisection cross-traffic injectors.
 */

#include <gtest/gtest.h>

#include "net/cross_traffic.hh"

namespace alewife::net {
namespace {

MachineConfig
testConfig()
{
    MachineConfig c;
    c.meshX = 8;
    c.meshY = 4;
    return c;
}

TEST(CrossTraffic, InjectsAtConfiguredRate)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [](Packet &) { return true; });

    CrossTrafficConfig cc;
    cc.bytesPerCycle = 8.0;
    cc.messageBytes = 64;
    CrossTraffic ct(eq, mesh, cc);
    ct.start();

    const Tick horizon = cyclesToTicks(std::uint64_t(10000));
    eq.runUntil(horizon);
    ct.stop();
    eq.run();

    // 8 bytes/cycle over 10000 cycles = 80000 bytes (within a period).
    EXPECT_NEAR(static_cast<double>(ct.bytesInjected()), 80000.0,
                8.0 * 64 * 2);
}

TEST(CrossTraffic, AllTrafficCrossesBisection)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [](Packet &) { return true; });

    CrossTrafficConfig cc;
    cc.bytesPerCycle = 4.0;
    CrossTraffic ct(eq, mesh, cc);
    ct.start();
    eq.runUntil(cyclesToTicks(std::uint64_t(2000)));
    ct.stop();
    eq.run();

    EXPECT_EQ(mesh.bisectionBytes(), ct.bytesInjected());
}

TEST(CrossTraffic, EffectiveBisectionSubtracts)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    CrossTrafficConfig cc;
    cc.bytesPerCycle = 5.0;
    CrossTraffic ct(eq, mesh, cc);
    EXPECT_NEAR(ct.effectiveBisection(),
                c.bisectionBytesPerCycle() - 5.0, 1e-9);
}

TEST(CrossTraffic, ZeroRateIsInert)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    CrossTrafficConfig cc;
    cc.bytesPerCycle = 0.0;
    CrossTraffic ct(eq, mesh, cc);
    ct.start();
    eq.run();
    EXPECT_EQ(ct.bytesInjected(), 0u);
}

TEST(CrossTraffic, StopHaltsInjection)
{
    EventQueue eq;
    MachineConfig c = testConfig();
    Mesh mesh(eq, c);
    for (int i = 0; i < c.nodes(); ++i)
        mesh.setSink(i, [](Packet &) { return true; });
    CrossTrafficConfig cc;
    cc.bytesPerCycle = 8.0;
    CrossTraffic ct(eq, mesh, cc);
    ct.start();
    eq.runUntil(cyclesToTicks(std::uint64_t(1000)));
    ct.stop();
    const std::uint64_t at_stop = ct.bytesInjected();
    eq.run();
    EXPECT_EQ(ct.bytesInjected(), at_stop);
}

} // namespace
} // namespace alewife::net
