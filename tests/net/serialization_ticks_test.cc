/**
 * @file
 * Pins the memoized Mesh::serializationTicks against the original
 * per-call formula, cyclesToTicks(bytes / linkBytesPerCycle()), across
 * representative packet sizes and link-speed configurations. The memo
 * table must be bit-identical to the formula — any divergence would
 * silently change every simulated timing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "machine/config.hh"
#include "net/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace alewife {
namespace {

/** The pre-memoization formula, verbatim. */
Tick
oldFormula(const MachineConfig &cfg, std::uint32_t bytes)
{
    return cyclesToTicks(static_cast<double>(bytes)
                         / cfg.linkBytesPerCycle());
}

/** Representative sizes: protocol control/header/data packets, AM
 *  packets, cross-traffic, DMA bulk, and beyond-memo-table sizes. */
const std::vector<std::uint32_t> kSizes = {
    0,  1,  7,  8,  15,  16,   24,   32,   64,   65,    100,  128,
    256, 512, 1000, 1024, 4095, 4096, 4097, 8192, 65536, 100000};

class SerializationTicks
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(SerializationTicks, MemoMatchesOldFormulaExactly)
{
    const auto [linkMBps, procMhz] = GetParam();
    MachineConfig cfg;
    cfg.linkMBps = linkMBps;
    cfg.procMhz = procMhz;
    EventQueue eq;
    net::Mesh mesh(eq, cfg);
    for (const std::uint32_t bytes : kSizes) {
        EXPECT_EQ(mesh.serializationTicks(bytes),
                  oldFormula(cfg, bytes))
            << "linkMBps=" << linkMBps << " procMhz=" << procMhz
            << " bytes=" << bytes;
    }
}

INSTANTIATE_TEST_SUITE_P(
    LinkSpeeds, SerializationTicks,
    ::testing::Values(
        std::make_pair(45.0, 20.0),  // Alewife default
        std::make_pair(45.0, 14.0),  // Fig. 9 clock scaling
        std::make_pair(45.0, 100.0), // fast-processor regime
        std::make_pair(10.0, 20.0),  // slow link
        std::make_pair(400.0, 20.0), // T3D-class link
        std::make_pair(33.3, 16.7)), // non-round ratios
    [](const auto &info) {
        return "L"
               + std::to_string(static_cast<int>(info.param.first * 10))
               + "_P"
               + std::to_string(
                   static_cast<int>(info.param.second * 10));
    });

TEST(SerializationTicks, MonotoneInBytes)
{
    MachineConfig cfg;
    EventQueue eq;
    net::Mesh mesh(eq, cfg);
    Tick prev = 0;
    for (std::uint32_t b = 0; b < 5000; ++b) {
        const Tick t = mesh.serializationTicks(b);
        EXPECT_GE(t, prev) << "bytes=" << b;
        prev = t;
    }
}

} // namespace
} // namespace alewife
