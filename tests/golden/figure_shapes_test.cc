/**
 * @file
 * Golden-shape regression suite: asserts the qualitative figure shapes
 * recorded in EXPERIMENTS.md at the default workload scale, so a
 * protocol or cost-model regression that bends a paper conclusion
 * fails plain `ctest` — not just a human eyeballing bench output.
 *
 * Absolute cycle counts are NOT asserted (they are calibration, not
 * reproduction targets); orderings and degradation ratios are.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/em3d.hh"
#include "apps/graph/catalog.hh"
#include "apps/iccg.hh"
#include "apps/moldyn.hh"
#include "apps/unstruc.hh"
#include "core/experiments.hh"

namespace alewife {
namespace {

using core::Mechanism;

// Default-scale workloads, mirroring bench_common.hh (Scale::Default).
core::AppFactory
em3dFactory()
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 2000;
    p.graph.degree = 8;
    p.iters = 3;
    return apps::Em3d::factory(p);
}

core::AppFactory
unstrucFactory()
{
    apps::Unstruc::Params p;
    p.mesh.nodes = 2000;
    p.iters = 2;
    return apps::Unstruc::factory(p);
}

core::AppFactory
iccgFactory()
{
    apps::Iccg::Params p;
    p.matrix.rows = 2000;
    return apps::Iccg::factory(p);
}

core::AppFactory
moldynFactory()
{
    apps::Moldyn::Params p;
    p.box.molecules = 1024;
    p.box.cutoff = 1.4;
    p.iters = 2;
    return apps::Moldyn::factory(p);
}

exp::EngineOptions
par()
{
    exp::EngineOptions opts;
    opts.jobs = 4;
    return opts;
}

std::vector<Mechanism>
allMechs()
{
    return {Mechanism::SharedMemory, Mechanism::SharedMemoryPrefetch,
            Mechanism::MpInterrupt, Mechanism::MpPolling,
            Mechanism::BulkTransfer};
}

/** runtimeCycles per mechanism at the base design point. */
std::map<Mechanism, double>
baseRuntimes(const core::AppFactory &app)
{
    const MachineConfig base;
    std::map<Mechanism, double> rt;
    for (const auto &r :
         core::runAllMechanisms(app, base, allMechs(), par())) {
        EXPECT_TRUE(r.verified) << r.app;
        rt[r.mechanism] = r.runtimeCycles;
    }
    return rt;
}

/** Figure 4 orderings: polling beats interrupts beats shared memory. */
TEST(GoldenFig4, Em3dMechanismOrdering)
{
    const auto rt = baseRuntimes(em3dFactory());
    EXPECT_LE(rt.at(Mechanism::MpPolling), rt.at(Mechanism::MpInterrupt));
    EXPECT_LE(rt.at(Mechanism::MpInterrupt),
              rt.at(Mechanism::SharedMemory));
    // EM3D is the one application with a large prefetch win (>12%).
    const double sm = rt.at(Mechanism::SharedMemory);
    const double pf = rt.at(Mechanism::SharedMemoryPrefetch);
    EXPECT_GE((sm - pf) / sm, 0.12);
}

TEST(GoldenFig4, MoldynMechanismOrdering)
{
    const auto rt = baseRuntimes(moldynFactory());
    EXPECT_LE(rt.at(Mechanism::MpPolling), rt.at(Mechanism::MpInterrupt));
    EXPECT_LE(rt.at(Mechanism::MpInterrupt),
              rt.at(Mechanism::SharedMemory));
    // Prefetching helps MOLDYN only a little (no large win).
    const double sm = rt.at(Mechanism::SharedMemory);
    const double pf = rt.at(Mechanism::SharedMemoryPrefetch);
    EXPECT_LT((sm - pf) / sm, 0.12);
}

TEST(GoldenFig4, UnstrucPollingBeatsInterrupts)
{
    const auto rt = baseRuntimes(unstrucFactory());
    EXPECT_LE(rt.at(Mechanism::MpPolling), rt.at(Mechanism::MpInterrupt));
    const double sm = rt.at(Mechanism::SharedMemory);
    const double pf = rt.at(Mechanism::SharedMemoryPrefetch);
    EXPECT_LT((sm - pf) / sm, 0.12);
}

/** Figure 4 / Section 4.3.1: bulk transfer loses, worst on ICCG. */
TEST(GoldenFig4, BulkTransferWorstOnIccg)
{
    const auto rt = baseRuntimes(iccgFactory());
    const double bulk = rt.at(Mechanism::BulkTransfer);
    for (const auto &[mech, cycles] : rt) {
        if (mech != Mechanism::BulkTransfer)
            EXPECT_GT(bulk, cycles) << core::mechanismName(mech);
    }
    // And ICCG gets no prefetch win at all.
    const double sm = rt.at(Mechanism::SharedMemory);
    const double pf = rt.at(Mechanism::SharedMemoryPrefetch);
    EXPECT_LT((sm - pf) / sm, 0.12);
    // Polling's edge over interrupts is real on ICCG (largest in the
    // paper): require a clear gap, not just <=.
    EXPECT_LT(rt.at(Mechanism::MpPolling),
              0.95 * rt.at(Mechanism::MpInterrupt));
}

/**
 * Figure 8: as bisection shrinks 18 -> 3.5 bytes/cycle, SM degrades
 * sharply (congestion region) while MP-I barely moves — the widening
 * gap that underlies the paper's crossover.
 */
TEST(GoldenFig8, SharedMemoryDegradesFasterAsBisectionShrinks)
{
    const MachineConfig base;
    const auto series = core::bisectionSweep(
        em3dFactory(), base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt}, {18.0, 3.5},
        64, par());
    ASSERT_EQ(series.size(), 2u);
    for (const auto &s : series)
        ASSERT_EQ(s.points.size(), 2u);

    auto ratio = [&](Mechanism m) {
        for (const auto &s : series) {
            if (s.mech == m)
                return s.points[1].result.runtimeCycles
                       / s.points[0].result.runtimeCycles;
        }
        ADD_FAILURE() << "mechanism missing from sweep";
        return 0.0;
    };
    const double sm = ratio(Mechanism::SharedMemory);
    const double mpi = ratio(Mechanism::MpInterrupt);
    EXPECT_GE(sm, 1.8);  // measured ~2.0x
    EXPECT_LE(mpi, 1.5); // measured ~1.3x
    EXPECT_GT(sm, mpi);
}

/**
 * Figure 9: scaling the clock against the fixed-wall-clock network
 * (relative latency up) hurts SM much more than MP.
 */
TEST(GoldenFig9, SharedMemoryDegradesFasterWithClockScaling)
{
    const MachineConfig base;
    const auto series = core::clockSweep(
        em3dFactory(), base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt,
         Mechanism::MpPolling},
        {14.0, 40.0}, par());
    ASSERT_EQ(series.size(), 3u);
    for (const auto &s : series)
        ASSERT_EQ(s.points.size(), 2u);

    auto ratio = [&](Mechanism m) {
        for (const auto &s : series) {
            if (s.mech == m)
                return s.points[1].result.runtimeCycles
                       / s.points[0].result.runtimeCycles;
        }
        ADD_FAILURE() << "mechanism missing from sweep";
        return 0.0;
    };
    const double sm = ratio(Mechanism::SharedMemory);
    const double mpi = ratio(Mechanism::MpInterrupt);
    const double mpp = ratio(Mechanism::MpPolling);
    EXPECT_GE(sm, 1.25);          // measured ~1.44x
    EXPECT_LE(mpi, 1.15);         // measured ~1.04x
    EXPECT_LE(mpp, 1.15);
    EXPECT_GE(sm, 1.2 * mpi);     // SM clearly the latency-sensitive one
    EXPECT_GE(sm, 1.2 * mpp);
}

// --------------------------------------------------------------------
// EXT3 (graph-analytics extension): shape assertions for the
// irregular point-to-point traffic regime.
// --------------------------------------------------------------------

apps::graph::GraphAppParams
graphParams(workload::GraphFamily f)
{
    apps::graph::GraphAppParams p;
    p.graph.family = f;
    p.graph.vertices = 1024;
    p.graph.avgDegree = 8;
    p.iters = 3;
    return p;
}

/**
 * EXT3: on a power-law graph, push PageRank sends one message per
 * cross edge every round — the high-message-rate regime where polled
 * delivery beats interrupts (per-message dispatch dominates), and
 * where per-word shared-memory traversal loses to batched messages.
 */
TEST(GoldenExt3, PollingBeatsInterruptsOnSkewedPushTraffic)
{
    const auto rt = baseRuntimes(apps::graph::makeApp(
        "pagerank-push", graphParams(workload::GraphFamily::RMat)));
    EXPECT_LE(rt.at(Mechanism::MpPolling),
              rt.at(Mechanism::MpInterrupt));
    EXPECT_LT(rt.at(Mechanism::MpPolling),
              rt.at(Mechanism::SharedMemory));
}

TEST(GoldenExt3, MessagePassingBeatsSharedMemoryOnBfs)
{
    const auto rt = baseRuntimes(apps::graph::makeApp(
        "bfs", graphParams(workload::GraphFamily::RMat)));
    // BFS claims batch six to a message; SM pays a round-trip rmw per
    // cross-edge claim plus the partition scan.
    EXPECT_LT(rt.at(Mechanism::MpPolling),
              rt.at(Mechanism::SharedMemory));
    EXPECT_LE(rt.at(Mechanism::MpPolling),
              rt.at(Mechanism::MpInterrupt));
}

/**
 * EXT3: hop-latency sensitivity mirrors the paper's Figure 9 story on
 * the graph family — the shared-memory BFS (round-trip per claim)
 * degrades faster than batched message passing when hop latency
 * grows 10x.
 */
TEST(GoldenExt3, SharedMemoryBfsMoreLatencySensitive)
{
    const auto factory = apps::graph::makeApp(
        "bfs", graphParams(workload::GraphFamily::Uniform));
    auto runtimeAt = [&](Mechanism m, double hopNs) {
        core::RunSpec spec;
        spec.machine.hopNs = hopNs;
        spec.mechanism = m;
        const auto r = core::runApp(factory, spec);
        EXPECT_TRUE(r.verified);
        return r.runtimeCycles;
    };
    const double sm = runtimeAt(Mechanism::SharedMemory, 400.0)
                      / runtimeAt(Mechanism::SharedMemory, 40.0);
    const double mpp = runtimeAt(Mechanism::MpPolling, 400.0)
                       / runtimeAt(Mechanism::MpPolling, 40.0);
    EXPECT_GT(sm, 1.0);
    EXPECT_GT(sm, mpp);
}

} // namespace
} // namespace alewife
