/**
 * @file
 * Unit tests for obs::MetricsRegistry: counter/gauge/histogram
 * behavior, CMMU counter ingestion through the shared field table, and
 * the schema-versioned JSON export with stable key order.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace alewife::obs {
namespace {

TEST(Metrics, CounterIdsAreStableAndAccumulate)
{
    MetricsRegistry reg(4);
    const int a = reg.counterId("a");
    const int b = reg.counterId("b");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, reg.counterId("a")); // lookup, not re-registration

    reg.addCounter(a, 0);
    reg.addCounter(a, 3, 10);
    reg.addCounter(b, 1, 2);
    EXPECT_EQ(reg.counterTotal(a), 11u);
    EXPECT_EQ(reg.counterTotal(b), 2u);
}

TEST(Metrics, HistogramUpperEdgesAreInclusive)
{
    MetricsRegistry reg(1);
    const int h = reg.histogramId("lat", {1, 10, 100});

    reg.observe(h, 0, 1.0);   // == first edge -> first bucket
    reg.observe(h, 0, 10.0);  // == second edge -> second bucket
    reg.observe(h, 0, 11.0);  // -> third bucket
    reg.observe(h, 0, 500.0); // past the last edge -> overflow bucket
    EXPECT_EQ(reg.histCount(h), 4u);
    EXPECT_DOUBLE_EQ(reg.histSum(h), 522.0);

    const exp::Json j = reg.toJson();
    const exp::Json &hist = j.at("histograms").at("lat");
    // 3 bounds + 1 implied overflow bucket.
    ASSERT_EQ(hist.at("buckets").size(), 4u);
    EXPECT_EQ(hist.at("buckets").at(0).asU64(), 1u); // 1.0 (== edge)
    EXPECT_EQ(hist.at("buckets").at(1).asU64(), 1u); // 10.0 (== edge)
    EXPECT_EQ(hist.at("buckets").at(2).asU64(), 1u); // 11.0
    EXPECT_EQ(hist.at("buckets").at(3).asU64(), 1u); // 500.0 overflow
}

TEST(Metrics, GaugeLastValueWins)
{
    MetricsRegistry reg(1);
    reg.setGauge("util", 0.25);
    reg.setGauge("util", 0.75);
    const exp::Json j = reg.toJson();
    EXPECT_DOUBLE_EQ(j.at("gauges").at("util").asDouble(), 0.75);
}

TEST(Metrics, IngestUsesTheSharedCounterFieldTable)
{
    const auto fields = machineCounterFields();
    ASSERT_FALSE(fields.empty());

    MachineCounters c;
    c.*(fields.front().member) = 7;
    c.*(fields.back().member) = 42;

    MetricsRegistry reg(2);
    reg.ingest(c, /*node=*/1);

    const std::string first = std::string("cmmu.") + fields.front().name;
    const std::string last = std::string("cmmu.") + fields.back().name;
    EXPECT_EQ(reg.counterTotal(reg.counterId(first)), 7u);
    EXPECT_EQ(reg.counterTotal(reg.counterId(last)), 42u);

    // Attribution landed on node 1, not node 0.
    const exp::Json j = reg.toJson();
    const exp::Json &per = j.at("counters").at(first).at("perNode");
    ASSERT_EQ(per.size(), 2u);
    EXPECT_EQ(per.at(0).asU64(), 0u);
    EXPECT_EQ(per.at(1).asU64(), 7u);
}

TEST(Metrics, JsonIsSchemaVersioned)
{
    MetricsRegistry reg(3);
    const exp::Json j = reg.toJson();
    EXPECT_EQ(j.at("schema").asString(), "alewife-metrics");
    EXPECT_EQ(j.at("version").asU64(),
              static_cast<std::uint64_t>(kMetricsSchemaVersion));
    EXPECT_EQ(j.at("nodes").asU64(), 3u);
}

TEST(Metrics, JsonKeyOrderIsRegistrationOrder)
{
    MetricsRegistry reg(1);
    // Deliberately not alphabetical: export must follow registration.
    reg.addCounter(reg.counterId("zeta"), 0);
    reg.addCounter(reg.counterId("alpha"), 0);
    reg.addCounter(reg.counterId("mid"), 0);

    const exp::Json j = reg.toJson();
    const auto &items = j.at("counters").items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, "zeta");
    EXPECT_EQ(items[1].first, "alpha");
    EXPECT_EQ(items[2].first, "mid");

    // And the serialized form is stable call to call.
    EXPECT_EQ(j.dump(2), reg.toJson().dump(2));
}

} // namespace
} // namespace alewife::obs
