/**
 * @file
 * FlightRecorder units: ring wraparound edges and dump formatting.
 *
 * recorder_test.cc pins the recorder's integration behavior (dump on
 * invariant violation); this suite pins the ring itself — exact
 * boundary behavior at capacity, one-past-capacity, and multiple
 * wraps, the capacity clamp, retained-window numbering, and the dump
 * header/record format downstream tooling greps for.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hh"

namespace alewife::obs {
namespace {

std::vector<std::string>
lines(const FlightRecorder &f)
{
    std::ostringstream os;
    f.dump(os);
    std::vector<std::string> out;
    std::string line;
    std::istringstream in(os.str());
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

TEST(Flight, EmptyRingDumpsHeaderOnly)
{
    FlightRecorder f(8);
    EXPECT_EQ(f.recorded(), 0u);
    EXPECT_EQ(f.size(), 0u);
    const auto ls = lines(f);
    ASSERT_EQ(ls.size(), 1u);
    EXPECT_EQ(ls[0],
              "flight recorder: 0 of 0 events retained (capacity 8)");
}

TEST(Flight, ExactlyFullRingRetainsEverythingInOrder)
{
    FlightRecorder f(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        f.push(i * 100, FlightRecorder::Kind::Hop, 2, 0x10 + i);
    EXPECT_EQ(f.recorded(), 4u);
    EXPECT_EQ(f.size(), 4u);

    const auto ls = lines(f);
    ASSERT_EQ(ls.size(), 5u); // header + 4 records
    // Oldest first, numbered from the first pushed event (index 0).
    EXPECT_NE(ls[1].find("[     0]"), std::string::npos);
    EXPECT_NE(ls[1].find("a=0x10"), std::string::npos);
    EXPECT_NE(ls[4].find("[     3]"), std::string::npos);
    EXPECT_NE(ls[4].find("a=0x13"), std::string::npos);
}

TEST(Flight, OnePastCapacityDropsExactlyTheOldest)
{
    FlightRecorder f(4);
    for (std::uint64_t i = 0; i < 5; ++i)
        f.push(i, FlightRecorder::Kind::Hop, 0, 0x20 + i);
    EXPECT_EQ(f.recorded(), 5u);
    EXPECT_EQ(f.size(), 4u);

    const auto ls = lines(f);
    ASSERT_EQ(ls.size(), 5u);
    // Event 0 (a=0x20) is gone; window is events 1..4, oldest first.
    std::ostringstream all;
    for (const auto &l : ls)
        all << l << "\n";
    EXPECT_EQ(all.str().find("a=0x20 "), std::string::npos);
    EXPECT_NE(ls[1].find("[     1]"), std::string::npos);
    EXPECT_NE(ls[1].find("a=0x21"), std::string::npos);
    EXPECT_NE(ls[4].find("[     4]"), std::string::npos);
    EXPECT_NE(ls[4].find("a=0x24"), std::string::npos);
}

TEST(Flight, ManyWrapsKeepTheLastWindowWithGlobalNumbering)
{
    FlightRecorder f(3);
    for (std::uint64_t i = 0; i < 100; ++i)
        f.push(i, FlightRecorder::Kind::ProtoSend, 1, i);
    EXPECT_EQ(f.recorded(), 100u);
    EXPECT_EQ(f.size(), 3u);

    const auto ls = lines(f);
    ASSERT_EQ(ls.size(), 4u);
    EXPECT_EQ(ls[0],
              "flight recorder: 3 of 100 events retained (capacity 3)");
    EXPECT_NE(ls[1].find("[    97]"), std::string::npos);
    EXPECT_NE(ls[1].find("a=0x61"), std::string::npos); // 97
    EXPECT_NE(ls[3].find("[    99]"), std::string::npos);
    EXPECT_NE(ls[3].find("a=0x63"), std::string::npos); // 99
}

TEST(Flight, ZeroCapacityClampsToOne)
{
    FlightRecorder f(0);
    f.push(100, FlightRecorder::Kind::TxnOpen, 7, 0xaa);
    f.push(200, FlightRecorder::Kind::TxnClose, 7, 0xbb);
    EXPECT_EQ(f.recorded(), 2u);
    EXPECT_EQ(f.size(), 1u);

    const auto ls = lines(f);
    ASSERT_EQ(ls.size(), 2u);
    EXPECT_EQ(ls[0],
              "flight recorder: 1 of 2 events retained (capacity 1)");
    EXPECT_NE(ls[1].find("txn-close"), std::string::npos);
    EXPECT_NE(ls[1].find("a=0xbb"), std::string::npos);
}

TEST(Flight, RecordFormatCarriesCyclesNodeKindAndOperands)
{
    FlightRecorder f(2);
    // tick 12345 = 123.45 cycles; dump prints cycles.
    f.push(12345, FlightRecorder::Kind::CacheFill, 13, 0x40, 0x2);
    const auto ls = lines(f);
    ASSERT_EQ(ls.size(), 2u);
    EXPECT_NE(ls[1].find("cyc"), std::string::npos);
    EXPECT_NE(ls[1].find("123.45"), std::string::npos);
    EXPECT_NE(ls[1].find("node  13"), std::string::npos);
    EXPECT_NE(ls[1].find("cache-fill"), std::string::npos);
    EXPECT_NE(ls[1].find("a=0x40"), std::string::npos);
    EXPECT_NE(ls[1].find("b=0x2"), std::string::npos);
}

TEST(Flight, EveryKindHasADistinctName)
{
    // kindName is the grep key in dumps; keep names unique and bound.
    std::vector<std::string> names;
    for (int k = 0;
         k <= static_cast<int>(FlightRecorder::Kind::RecallHonored);
         ++k) {
        const std::string n = FlightRecorder::kindName(
            static_cast<FlightRecorder::Kind>(k));
        EXPECT_NE(n, "?") << "kind " << k << " missing a name";
        for (const auto &seen : names)
            EXPECT_NE(n, seen) << "duplicate kind name " << n;
        names.push_back(n);
    }
}

} // namespace
} // namespace alewife::obs
