/**
 * @file
 * Recorder integration tests on real runs, plus FlightRecorder units.
 *
 * The load-bearing one is ObservationNeverChangesTheResult: a fully
 * instrumented run (timeline + metrics + interval profile + flight
 * ring) must be bit-identical to a detached run — same runtime, same
 * checksum, same event count, same CMMU counters. That is the contract
 * that lets obs settings stay out of result-cache keys.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "apps/stream.hh"
#include "core/runner.hh"
#include "exp/json.hh"
#include "obs/flight.hh"
#include "obs/options.hh"
#include "sim/stats.hh"

namespace alewife::obs {
namespace {

core::AppFactory
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 24;
    p.iters = 3;
    return apps::Stream::factory(p);
}

exp::Json
parseFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    exp::Json doc = exp::Json::parse(ss.str(), &err);
    EXPECT_FALSE(doc.isNull()) << path << ": " << err;
    return doc;
}

TEST(Recorder, ObservationNeverChangesTheResult)
{
    core::RunSpec plain;
    const auto detached = core::runApp(tinyStream(), plain);

    core::RunSpec observed;
    observed.obs.traceOut = testing::TempDir() + "obs-det-trace.json";
    observed.obs.metricsOut = testing::TempDir() + "obs-det-metrics.json";
    observed.obs.intervalCycles = 100;
    observed.obs.flightEvents = 256;
    const auto attached = core::runApp(tinyStream(), observed);

    EXPECT_EQ(detached.runtimeCycles, attached.runtimeCycles);
    EXPECT_EQ(detached.checksum, attached.checksum);
    EXPECT_EQ(detached.simEvents, attached.simEvents);
    EXPECT_TRUE(detached.verified);
    EXPECT_TRUE(attached.verified);
    for (std::size_t i = 0; i < detached.breakdown.ticks.size(); ++i)
        EXPECT_EQ(detached.breakdown.ticks[i],
                  attached.breakdown.ticks[i]);
    for (const auto &f : machineCounterFields())
        EXPECT_EQ(detached.counters.*(f.member),
                  attached.counters.*(f.member))
            << "counter " << f.name;
}

TEST(Recorder, MetricsFileIsSchemaVersionedAndPopulated)
{
    core::RunSpec spec;
    spec.obs.metricsOut = testing::TempDir() + "obs-metrics.json";
    spec.obs.intervalCycles = 100;
    const auto r = core::runApp(tinyStream(), spec);
    ASSERT_TRUE(r.verified);

    const exp::Json doc = parseFile(spec.obs.metricsOut);
    EXPECT_EQ(doc.at("schema").asString(), "alewife-metrics");
    EXPECT_EQ(doc.at("version").asU64(), 1u);

    // The run moved real packets; the registry must agree.
    const exp::Json &ctrs = doc.at("counters");
    EXPECT_GT(ctrs.at("net.packets_injected").at("total").asU64(), 0u);
    EXPECT_EQ(ctrs.at("net.packets_injected").at("total").asU64(),
              ctrs.at("net.packets_delivered").at("total").asU64());
    EXPECT_EQ(ctrs.at("cmmu.packetsInjected").at("total").asU64(),
              r.counters.packetsInjected);

    // Histograms observed something and link stats cover the mesh.
    EXPECT_GT(doc.at("histograms")
                  .at("packet_transit_cycles")
                  .at("count")
                  .asU64(),
              0u);
    EXPECT_GT(doc.at("links").size(), 0u);

    // Interval profiling sampled the Figure-4 breakdown over time.
    ASSERT_GT(doc.at("intervals").size(), 0u);
    const exp::Json &iv = doc.at("intervals").at(0);
    EXPECT_TRUE(iv.has("cycle"));
    EXPECT_TRUE(iv.at("breakdownCycles").isObject());
}

TEST(Recorder, TraceFileLoadsAndAsyncPairsMatch)
{
    core::RunSpec spec;
    spec.obs.traceOut = testing::TempDir() + "obs-trace.json";
    const auto r = core::runApp(tinyStream(), spec);
    ASSERT_TRUE(r.verified);

    const exp::Json doc = parseFile(spec.obs.traceOut);
    const exp::Json &evs = doc.at("traceEvents");
    ASSERT_GT(evs.size(), 0u);

    std::map<std::pair<std::string, std::uint64_t>, int> open;
    std::size_t slices = 0, metas = 0;
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const exp::Json &e = evs.at(i);
        const std::string ph = e.at("ph").asString();
        if (ph == "X") {
            ++slices;
            EXPECT_TRUE(e.has("dur"));
        } else if (ph == "M") {
            ++metas;
        } else if (ph == "b" || ph == "e") {
            const auto k = std::make_pair(e.at("cat").asString(),
                                          e.at("id").asU64());
            open[k] += ph == "b" ? 1 : -1;
        }
    }
    EXPECT_GT(slices, 0u) << "no processor-phase slices in the trace";
    EXPECT_GT(metas, 0u) << "no track-name metadata in the trace";
    for (const auto &[k, n] : open)
        EXPECT_EQ(n, 0) << "unmatched async pair cat=" << k.first
                        << " id=" << k.second;
}

TEST(Flight, RingKeepsTheMostRecentEvents)
{
    FlightRecorder f(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        f.push(i * 100, FlightRecorder::Kind::ProtoSend, 1, i);
    EXPECT_EQ(f.recorded(), 10u);
    EXPECT_EQ(f.size(), 4u);

    std::ostringstream os;
    f.dump(os);
    const std::string text = os.str();
    // Oldest retained first: events 6..9 survive, 0..5 were overwritten.
    EXPECT_NE(text.find("proto-send"), std::string::npos);
    EXPECT_LT(text.find("0x6"), text.find("0x9"));
    EXPECT_EQ(text.find("0x5"), std::string::npos);
}

TEST(Flight, DumpToFileWritesTheWindow)
{
    FlightRecorder f(8);
    f.push(1234, FlightRecorder::Kind::CacheInvalidate, 3, 0xabcd, 1);
    const std::string path = testing::TempDir() + "obs-flight.dump";
    f.dumpToFile(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("cache-inval"), std::string::npos);
    EXPECT_NE(ss.str().find("0xabcd"), std::string::npos);
}

} // namespace
} // namespace alewife::obs
