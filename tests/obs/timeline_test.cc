/**
 * @file
 * TraceWriter tests: the emitted document is valid JSON in Chrome
 * trace-event object format, every async "b" has its matching "e", and
 * each phase carries the fields Perfetto expects.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "exp/json.hh"
#include "obs/timeline.hh"

namespace alewife::obs {
namespace {

exp::Json
roundTrip(const TraceWriter &w)
{
    std::ostringstream os;
    w.writeTo(os);
    std::string err;
    exp::Json doc = exp::Json::parse(os.str(), &err);
    EXPECT_TRUE(doc.isObject()) << "parse error: " << err;
    return doc;
}

TEST(Timeline, EmptyTraceIsAValidDocument)
{
    TraceWriter w;
    const exp::Json doc = roundTrip(w);
    EXPECT_TRUE(doc.has("displayTimeUnit"));
    EXPECT_TRUE(doc.at("otherData").has("tsUnit"));
    EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(Timeline, CompleteSliceCarriesDurationInCycles)
{
    TraceWriter w;
    // 300 ticks = 3 cycles at the default 100 ticks/cycle.
    w.complete(2, 1, "compute", "proc", cyclesToTicks(5.0),
               cyclesToTicks(8.0));
    const exp::Json doc = roundTrip(w);
    ASSERT_EQ(doc.at("traceEvents").size(), 1u);
    const exp::Json &e = doc.at("traceEvents").at(0);
    EXPECT_EQ(e.at("ph").asString(), "X");
    EXPECT_EQ(e.at("pid").asU64(), 2u);
    EXPECT_EQ(e.at("tid").asU64(), 1u);
    EXPECT_EQ(e.at("name").asString(), "compute");
    EXPECT_DOUBLE_EQ(e.at("ts").asDouble(), 5.0);
    EXPECT_DOUBLE_EQ(e.at("dur").asDouble(), 3.0);
}

TEST(Timeline, AsyncPairsAreMatchedByConstruction)
{
    TraceWriter w;
    w.asyncPair(0, "pkt", "net", 7, 100, 900);
    w.asyncPair(1, "pkt", "net", 8, 200, 400);
    w.asyncPair(3, "txn", "coh", 7, 0, 50); // same id, other category

    const exp::Json doc = roundTrip(w);
    // Per (cat, id): begin count must equal end count, begin ts <= end.
    std::map<std::pair<std::string, std::uint64_t>, int> open;
    for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
        const exp::Json &e = doc.at("traceEvents").at(i);
        const std::string ph = e.at("ph").asString();
        if (ph != "b" && ph != "e")
            continue;
        const auto k = std::make_pair(e.at("cat").asString(),
                                      e.at("id").asU64());
        open[k] += ph == "b" ? 1 : -1;
        EXPECT_GE(open[k], 0) << "e before b for " << k.first;
    }
    ASSERT_EQ(open.size(), 3u);
    for (const auto &[k, n] : open)
        EXPECT_EQ(n, 0) << "unmatched b for cat=" << k.first
                        << " id=" << k.second;
}

TEST(Timeline, InstantAndCounterCarryArgs)
{
    TraceWriter w;
    w.instant(0, 3, "hop", "net", 500, "waited_cycles", 2.5);
    w.counter(4, "compute", "cycles", 1000, 123.0);

    const exp::Json doc = roundTrip(w);
    ASSERT_EQ(doc.at("traceEvents").size(), 2u);
    const exp::Json &i = doc.at("traceEvents").at(0);
    EXPECT_EQ(i.at("ph").asString(), "i");
    EXPECT_EQ(i.at("s").asString(), "t");
    EXPECT_DOUBLE_EQ(i.at("args").at("waited_cycles").asDouble(), 2.5);
    const exp::Json &c = doc.at("traceEvents").at(1);
    EXPECT_EQ(c.at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(c.at("args").at("cycles").asDouble(), 123.0);
}

TEST(Timeline, TrackNamesBecomeMetadataRecords)
{
    TraceWriter w;
    w.processName(0, "node 0");
    w.threadName(0, 1, "handlers");

    const exp::Json doc = roundTrip(w);
    ASSERT_EQ(doc.at("traceEvents").size(), 2u);
    const exp::Json &p = doc.at("traceEvents").at(0);
    EXPECT_EQ(p.at("ph").asString(), "M");
    EXPECT_EQ(p.at("name").asString(), "process_name");
    EXPECT_EQ(p.at("args").at("name").asString(), "node 0");
    const exp::Json &t = doc.at("traceEvents").at(1);
    EXPECT_EQ(t.at("name").asString(), "thread_name");
    EXPECT_EQ(t.at("args").at("name").asString(), "handlers");
}

} // namespace
} // namespace alewife::obs
