/**
 * @file
 * Critical-path recorder + predictor goldens.
 *
 * Three contracts are pinned here:
 *  - capture is free of side effects and deterministic: results are
 *    bit-identical with the recorder attached or detached, and the
 *    graph digest is bit-identical run-to-run and with/without an
 *    obs::Recorder attached alongside;
 *  - identity replay is exact: re-costing the graph under its own
 *    configuration reproduces the measured runtime bit-for-bit
 *    (Predictor::selfCheckExact);
 *  - prediction is useful: on mini fig08 (bisection) and fig09 (clock)
 *    sweeps the predicted curves track the measured ones within a
 *    MAPE tolerance, for both a shared-memory and a message-passing
 *    mechanism, from ONE instrumented run per mechanism.
 *
 * Plus the delay-injection knob: disabled is bit-identical to no knob
 * at all, enabled produces a propagation/decay report.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "apps/stream.hh"
#include "core/runner.hh"
#include "obs/critpath.hh"
#include "obs/predict.hh"

namespace alewife::obs {
namespace {

core::AppFactory
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 24;
    p.iters = 3;
    return apps::Stream::factory(p);
}

/** One instrumented run; the graph lands in @p rec. */
core::RunResult
capture(CritPathRecorder &rec, const core::RunSpec &spec)
{
    return core::runApp(tinyStream(), spec, /*verify_fatal=*/true,
                        /*auditor=*/nullptr, /*driver=*/nullptr, &rec);
}

double
mape(const std::vector<double> &measured,
     const std::vector<double> &predicted)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < measured.size(); ++i)
        sum += std::abs(predicted[i] - measured[i]) / measured[i];
    return 100.0 * sum / measured.size();
}

TEST(CritPath, AttachingTheRecorderNeverChangesTheResult)
{
    core::RunSpec spec;
    const auto detached = core::runApp(tinyStream(), spec);

    CritPathRecorder rec;
    const auto attached = capture(rec, spec);

    EXPECT_EQ(detached.runtimeCycles, attached.runtimeCycles);
    EXPECT_EQ(detached.checksum, attached.checksum);
    EXPECT_EQ(detached.simEvents, attached.simEvents);
    EXPECT_TRUE(attached.verified);

    // The graph saw the whole run.
    EXPECT_EQ(rec.graph().eventsExecuted, attached.simEvents);
    EXPECT_GT(rec.graph().size(), 0u);
    EXPECT_FALSE(rec.graph().netEdges.empty());
    EXPECT_FALSE(rec.graph().finish.empty());
}

TEST(CritPath, GraphIsBitIdenticalRunToRunAndUnderObservation)
{
    core::RunSpec spec;
    CritPathRecorder a, b;
    capture(a, spec);
    capture(b, spec);
    EXPECT_EQ(a.graph().digest(), b.graph().digest());
    EXPECT_EQ(a.graph().size(), b.graph().size());

    // An obs::Recorder attached alongside must not perturb the tree.
    core::RunSpec observed = spec;
    observed.obs.metricsOut = testing::TempDir() + "critpath-met.json";
    observed.obs.intervalCycles = 100;
    observed.obs.flightEvents = 128;
    CritPathRecorder c;
    capture(c, observed);
    EXPECT_EQ(a.graph().digest(), c.graph().digest());
}

TEST(CritPath, IdentityReplayReproducesTheMeasuredRunBitExactly)
{
    for (const auto mech :
         {core::Mechanism::SharedMemory, core::Mechanism::MpInterrupt,
          core::Mechanism::BulkTransfer}) {
        core::RunSpec spec;
        spec.mechanism = mech;
        CritPathRecorder rec;
        const auto r = capture(rec, spec);

        Predictor p(rec.graph());
        EXPECT_TRUE(p.selfCheckExact())
            << core::mechanismName(mech);
        EXPECT_EQ(p.predictRuntimeCycles(p.baseTarget()),
                  r.runtimeCycles)
            << core::mechanismName(mech);
    }
}

TEST(CritPath, BreakdownAndSlackCoverTheRun)
{
    core::RunSpec spec;
    CritPathRecorder rec;
    const auto r = capture(rec, spec);

    Predictor p(rec.graph());
    const CritPathBreakdown b = p.breakdown(p.baseTarget());
    EXPECT_NEAR(b.totalCycles, r.runtimeCycles,
                1e-9 * r.runtimeCycles);
    const double parts = b.computeCycles + b.protocolCycles
                         + b.messageCycles + b.retryCycles
                         + b.netFixedCycles + b.netHopCycles
                         + b.netSerCycles + b.netQueueCycles
                         + b.crossTrafficCycles + b.otherCycles;
    EXPECT_NEAR(parts, b.totalCycles, 1e-6 * b.totalCycles);
    EXPECT_GT(b.pathEvents, 0u);
    EXPECT_GT(b.computeCycles, 0.0);

    const auto slack = p.slackByNode(p.baseTarget());
    ASSERT_EQ(slack.size(),
              static_cast<std::size_t>(spec.machine.nodes()));
    std::uint64_t edges = 0;
    for (const auto &s : slack)
        edges += s.edges;
    EXPECT_EQ(edges, rec.graph().netEdges.size());
}

TEST(CritPath, PredictsTheBisectionSweepWithinTolerance)
{
    // Mini fig08: one instrumented base run per mechanism predicts the
    // runtime under injected cross traffic (effective bisections 10
    // and 5 bytes/cycle against the native 18).
    const std::vector<double> bisections = {10.0, 5.0};
    for (const auto mech :
         {core::Mechanism::SharedMemory, core::Mechanism::MpInterrupt}) {
        core::RunSpec base;
        base.mechanism = mech;
        CritPathRecorder rec;
        capture(rec, base);
        Predictor p(rec.graph());
        const double native = base.machine.bisectionBytesPerCycle();

        std::vector<double> measured, predicted;
        for (const double b : bisections) {
            core::RunSpec at = base;
            at.crossTraffic.bytesPerCycle = native - b;
            at.crossTraffic.messageBytes = 64;
            measured.push_back(
                core::runApp(tinyStream(), at).runtimeCycles);

            PredictTarget t;
            t.machine = base.machine;
            t.crossBytesPerCycle = native - b;
            t.crossMessageBytes = 64;
            predicted.push_back(p.predictRuntimeCycles(t));
        }
        const double err = mape(measured, predicted);
        RecordProperty("mape_pct", std::to_string(err));
        EXPECT_LT(err, 15.0)
            << core::mechanismName(mech) << " measured={"
            << measured[0] << "," << measured[1] << "} predicted={"
            << predicted[0] << "," << predicted[1] << "}";
    }
}

TEST(CritPath, PredictsTheClockSweepWithinTolerance)
{
    // Mini fig09: predict the runtime (in cycles of the new clock) as
    // the processor speeds up against the fixed-wall-clock network.
    const std::vector<double> mhzs = {14.0, 40.0};
    for (const auto mech :
         {core::Mechanism::SharedMemory, core::Mechanism::MpInterrupt}) {
        core::RunSpec base;
        base.mechanism = mech;
        CritPathRecorder rec;
        capture(rec, base);
        Predictor p(rec.graph());

        std::vector<double> measured, predicted;
        for (const double mhz : mhzs) {
            core::RunSpec at = base;
            at.machine.procMhz = mhz;
            measured.push_back(
                core::runApp(tinyStream(), at).runtimeCycles);

            PredictTarget t;
            t.machine = base.machine;
            t.machine.procMhz = mhz;
            predicted.push_back(p.predictRuntimeCycles(t));
        }
        const double err = mape(measured, predicted);
        RecordProperty("mape_pct", std::to_string(err));
        EXPECT_LT(err, 15.0)
            << core::mechanismName(mech) << " measured={"
            << measured[0] << "," << measured[1] << "} predicted={"
            << predicted[0] << "," << predicted[1] << "}";
    }
}

TEST(CritPath, DisabledDelayInjectionIsBitIdenticalToNoKnob)
{
    core::RunSpec plain;
    const auto a = core::runApp(tinyStream(), plain);

    // node set but zero stall => disabled => schedules nothing.
    core::RunSpec off = plain;
    off.delay.node = 3;
    off.delay.atCycles = 100.0;
    off.delay.stallCycles = 0.0;
    ASSERT_FALSE(off.delay.enabled());
    const auto b = core::runApp(tinyStream(), off);

    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.simEvents, b.simEvents);
}

TEST(CritPath, DelayInjectionPropagatesAndDecays)
{
    core::RunSpec base;
    CritPathRecorder baseRec;
    const auto r0 = capture(baseRec, base);

    // The stall must exceed the node's barrier slack to propagate; a
    // small stall is (correctly) absorbed without moving the finish.
    core::RunSpec injected = base;
    injected.delay.node = 0;
    injected.delay.atCycles = 50.0;
    injected.delay.stallCycles = 4000.0;
    CritPathRecorder injRec;
    const auto r1 = capture(injRec, injected);

    // The stall costs something, bounded by the stall itself plus
    // secondary queueing.
    EXPECT_GT(r1.runtimeCycles, r0.runtimeCycles);

    const InjectionReport rep = compareInjectedRuns(
        baseRec.graph(), injRec.graph(), injected.delay.node);
    EXPECT_EQ(rep.injectNode, 0);
    EXPECT_NEAR(rep.finishShiftCycles,
                r1.runtimeCycles - r0.runtimeCycles, 1.0);
    ASSERT_EQ(rep.nodes.size(),
              static_cast<std::size_t>(base.machine.nodes()));
    EXPECT_EQ(rep.nodes[0].hopsFromInjection, 0);
    EXPECT_GT(rep.nodesShifted, 0u);

    // The injected node itself shifted.
    EXPECT_GT(rep.nodes[0].doneShiftCycles, 0.0);

    // Symbolic injection is a criticality probe over the recorded
    // edges: stalling a node off the recorded finish chain reports
    // zero (barrier joins stay pinned to the base run's last arriver),
    // stalling a node ON it shifts the finish by at most the stall.
    // Probing every node must find the chain, and no probe may shift
    // the finish by more than the stall plus rounding.
    Predictor p(baseRec.graph());
    std::uint32_t critical = 0;
    for (NodeId n = 0; n < base.machine.nodes(); ++n) {
        const InjectionReport sym = p.injectDelay(
            p.baseTarget(), n, injected.delay.atCycles,
            injected.delay.stallCycles);
        EXPECT_GE(sym.finishShiftCycles, 0.0) << "node " << n;
        EXPECT_LE(sym.finishShiftCycles,
                  injected.delay.stallCycles + 1.0)
            << "node " << n;
        if (sym.finishShiftCycles > 0.0)
            ++critical;
    }
    EXPECT_GT(critical, 0u);
    EXPECT_LT(critical,
              static_cast<std::uint32_t>(base.machine.nodes()));
}

TEST(CritPath, PredictionIsCheaperThanSimulation)
{
    // The acceptance bar: a predicted sweep point must cost >= 10x
    // less than a simulated one. A solve is one O(events) arithmetic
    // pass over the captured tree; a simulation executes the same
    // number of events through the full machine model. Compare wall
    // time with a wide margin (the true ratio is ~100x).
    core::RunSpec spec;
    CritPathRecorder rec;
    capture(rec, spec);
    Predictor p(rec.graph());
    EXPECT_EQ(p.solveEvents(), rec.graph().size());

    const auto t0 = std::chrono::steady_clock::now();
    core::runApp(tinyStream(), spec);
    const auto t1 = std::chrono::steady_clock::now();
    double acc = 0.0;
    PredictTarget t = p.baseTarget();
    for (int i = 0; i < 10; ++i) {
        t.machine.procMhz = 20.0 + i; // defeat any caching
        acc += p.predictRuntimeCycles(t);
    }
    const auto t2 = std::chrono::steady_clock::now();
    ASSERT_GT(acc, 0.0);
    const auto simNs = (t1 - t0).count();
    const auto tenSolvesNs = (t2 - t1).count();
    EXPECT_LT(tenSolvesNs, simNs)
        << "10 solves took " << tenSolvesNs << " ns vs one sim at "
        << simNs << " ns — prediction is not >=10x cheaper";
}

} // namespace
} // namespace alewife::obs
