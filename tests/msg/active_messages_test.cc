/**
 * @file
 * Active-message layer tests: delivery, interrupt vs. polling, queue
 * backpressure, handler replies, cost accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

struct MsgState
{
    msg::HandlerId h = -1;
    std::vector<std::uint64_t> got;
    std::vector<int> count;
};

TEST(ActiveMessages, ArgumentsArriveIntact)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    MsgState st;
    st.got.assign(m.nodes(), 0);
    st.h = m.handlers().add([&st](msg::HandlerEnv &env) {
        st.got[env.self()] = env.msg().args[0] + env.msg().args[1];
    });
    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0)
            co_await ctx.send(3, st.h, msg::amArgs(40, 2));
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(st.got[3], 42u);
}

TEST(ActiveMessages, InterruptModeDeliversWithoutPolling)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    MsgState st;
    st.count.assign(m.nodes(), 0);
    st.h = m.handlers().add(
        [&st](msg::HandlerEnv &env) { ++st.count[env.self()]; });
    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() != 1)
            co_await ctx.send(1, st.h, {});
        else
            co_await ctx.compute(50000); // never polls
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(st.count[1], static_cast<int>(m.nodes()) - 1);
    EXPECT_GT(m.counters().interruptsTaken, 0u);
    EXPECT_EQ(m.counters().messagesPolled, 0u);
}

TEST(ActiveMessages, PollingModeDefersToPoll)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Polling);
    MsgState st;
    st.count.assign(m.nodes(), 0);
    st.h = m.handlers().add(
        [&st](msg::HandlerEnv &env) { ++st.count[env.self()]; });

    struct Flow
    {
        bool sent = false;
        int seen_before_poll = -1;
    };
    static Flow flow; // reset per test body
    flow = Flow{};

    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            co_await ctx.send(1, st.h, {});
            flow.sent = true;
        } else if (ctx.self() == 1) {
            co_await ctx.waitUntil([&]() { return flow.sent; },
                                   TimeCat::Sync);
            co_await ctx.compute(2000);
            flow.seen_before_poll = st.count[1];
            co_await ctx.poll();
        }
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(st.count[1], 1);
    EXPECT_GT(m.counters().messagesPolled, 0u);
    EXPECT_EQ(m.counters().interruptsTaken, 0u);
}

TEST(ActiveMessages, HandlerCanReply)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    struct PingPong
    {
        msg::HandlerId ping = -1, pong = -1;
        bool got_pong = false;
    } pp;
    pp.pong = m.handlers().add(
        [&pp](msg::HandlerEnv &) { pp.got_pong = true; });
    pp.ping = m.handlers().add([&pp](msg::HandlerEnv &env) {
        env.send(static_cast<NodeId>(env.msg().args[0]), pp.pong, {});
    });
    auto prog = [&pp](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            co_await ctx.send(5, pp.ping, msg::amArgs(0));
            co_await ctx.waitUntil([&]() { return pp.got_pong; });
        }
        co_return;
    };
    m.run(prog);
    EXPECT_TRUE(pp.got_pong);
}

TEST(ActiveMessages, BulkBodyArrivesAndPaddingCounted)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    struct Bulk
    {
        msg::HandlerId h = -1;
        std::vector<std::uint64_t> body;
    } bk;
    bk.h = m.handlers().add([&bk](msg::HandlerEnv &env) {
        bk.body = env.msg().body;
    });
    auto prog = [&bk](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            std::vector<std::uint64_t> body = {1, 2, 3, 4, 5, 6, 7};
            co_await ctx.sendBulk(2, bk.h, {}, std::move(body));
        }
        co_return;
    };
    m.run(prog);
    ASSERT_EQ(bk.body.size(), 7u);
    EXPECT_EQ(bk.body[6], 7u);
    EXPECT_EQ(m.counters().dmaTransfers, 1u);
    // Volume: header 8 + descriptor 8 + 56 bytes payload (already
    // 8-aligned, no extra padding).
    EXPECT_EQ(m.volume().get(VolCat::Data), 56u);
    EXPECT_EQ(m.volume().get(VolCat::Headers), 16u);
}

TEST(ActiveMessages, QueueBackpressureFillsNetwork)
{
    MachineConfig cfg = smallConfig();
    cfg.niInputQueueSlots = 2;
    Machine m(cfg, proc::SyncStyle::MessagePassing,
              msg::RecvMode::Polling);
    MsgState st;
    st.count.assign(m.nodes(), 0);
    st.h = m.handlers().add(
        [&st](msg::HandlerEnv &env) { ++st.count[env.self()]; });

    const int burst = 12;
    auto prog = [&st, burst](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            for (int i = 0; i < burst; ++i)
                co_await ctx.send(1, st.h, {});
        } else if (ctx.self() == 1) {
            // Poll only after a long delay: the 2-slot queue must fill
            // and packets must park in the network.
            co_await ctx.compute(20000);
            co_await ctx.waitUntil(
                [&]() { return st.count[1] >= burst; }, TimeCat::Sync);
        }
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(st.count[1], burst);
    EXPECT_GT(m.counters().niQueueFullStalls, 0u);
}

TEST(ActiveMessages, PolledHandlersChargeThePoller)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Polling);
    MsgState st;
    st.count.assign(m.nodes(), 0);
    st.h = m.handlers().add(
        [&st](msg::HandlerEnv &env) { ++st.count[env.self()]; });

    struct Out
    {
        double poll_cycles = 0.0;
    };
    static Out out;
    out = Out{};

    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            for (int i = 0; i < 5; ++i)
                co_await ctx.send(1, st.h, {});
        } else if (ctx.self() == 1) {
            co_await ctx.compute(20000);
            const Tick before = ctx.proc().localNow();
            co_await ctx.poll();
            out.poll_cycles = ticksToCycles(ctx.proc().localNow() - before);
        }
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(st.count[1], 5);
    // Five dispatches at ~12 cycles each, plus the poll check.
    EXPECT_GT(out.poll_cycles, 40.0);
}

TEST(ActiveMessages, VolumeCountsHeaderAndArgs)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);
    MsgState st;
    st.h = m.handlers().add([](msg::HandlerEnv &) {});
    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0)
            co_await ctx.send(1, st.h, msg::amArgs(1, 2, 3));
        co_return;
    };
    m.run(prog);
    EXPECT_EQ(m.volume().get(VolCat::Headers), 8u);
    EXPECT_EQ(m.volume().get(VolCat::Data), 24u);
    EXPECT_EQ(m.volume().get(VolCat::Requests), 0u);
}

} // namespace
} // namespace alewife
