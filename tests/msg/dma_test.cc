/**
 * @file
 * Tests for the DMA cost model.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "msg/dma.hh"

namespace alewife::msg {
namespace {

TEST(DmaCostModel, GatherScalesWithLines)
{
    MachineConfig cfg; // 60 cycles per 16-byte line
    DmaCostModel dma(cfg);
    EXPECT_DOUBLE_EQ(dma.gatherCycles(2), 60.0);  // one line
    EXPECT_DOUBLE_EQ(dma.gatherCycles(4), 120.0); // two lines
    EXPECT_DOUBLE_EQ(dma.gatherCycles(1), 30.0);  // half line
    EXPECT_DOUBLE_EQ(dma.scatterCycles(2), dma.gatherCycles(2));
}

TEST(DmaCostModel, SetupComesFromConfig)
{
    MachineConfig cfg;
    cfg.dmaSetupCycles = 35.0;
    DmaCostModel dma(cfg);
    EXPECT_DOUBLE_EQ(dma.setupCycles(), 35.0);
}

TEST(DmaCostModel, PaddingRoundsToAlignment)
{
    MachineConfig cfg; // 8-byte alignment
    DmaCostModel dma(cfg);
    EXPECT_EQ(dma.paddedBytes(1), 8u);
    EXPECT_EQ(dma.paddedBytes(3), 24u);

    cfg.dmaAlignBytes = 16;
    DmaCostModel dma16(cfg);
    EXPECT_EQ(dma16.paddedBytes(1), 16u);
    EXPECT_EQ(dma16.paddedBytes(2), 16u);
    EXPECT_EQ(dma16.paddedBytes(3), 32u);
}

} // namespace
} // namespace alewife::msg
