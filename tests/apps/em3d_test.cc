/**
 * @file
 * EM3D integration tests: every mechanism must produce the sequential
 * reference result, and the qualitative Section 4.1/5.1 findings must
 * hold on the simulated Alewife.
 */

#include <gtest/gtest.h>

#include "apps/em3d.hh"
#include "core/experiments.hh"

namespace alewife {
namespace {

using core::Mechanism;

apps::Em3d::Params
smallParams()
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 512;
    p.graph.degree = 6;
    p.graph.pctRemote = 0.2;
    p.graph.span = 3;
    p.graph.nprocs = 32;
    p.graph.seed = 7;
    p.iters = 3;
    return p;
}

class Em3dAllMechanisms : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(Em3dAllMechanisms, MatchesSequentialReference)
{
    apps::Em3d app(smallParams());
    core::RunSpec spec;
    spec.mechanism = GetParam();
    const core::RunResult r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << "got " << r.checksum << " want " << r.reference;
    EXPECT_GT(r.runtimeCycles, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, Em3dAllMechanisms,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        // gtest parameter names must be alphanumeric.
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(Em3dShape, SharedMemoryVolumeFarExceedsMessagePassing)
{
    const auto factory = apps::Em3d::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt});
    const double sm = static_cast<double>(rs[0].volume.total());
    const double mp = static_cast<double>(rs[1].volume.total());
    // Paper: up to ~6x; require at least 2.5x on the small instance.
    EXPECT_GT(sm, 2.5 * mp);
}

TEST(Em3dShape, SharedMemoryCompetitiveOnAlewife)
{
    // Use an instance closer to the paper's scale (per-node work must
    // amortize the barriers, as it does at 10000 nodes / 32 procs).
    apps::Em3d::Params p = smallParams();
    p.graph.nodesPerSide = 2048;
    p.graph.degree = 8;
    p.iters = 2;
    const auto factory = apps::Em3d::factory(p);
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt});
    // Figure 4: SM and MP in the same ballpark on Alewife (the paper
    // shows rough parity at 10000 nodes; our scaled-down instance
    // amortizes barriers less, so allow up to 1.8x).
    const double ratio = rs[0].runtimeCycles / rs[1].runtimeCycles;
    EXPECT_GT(ratio, 1.0 / 1.8);
    EXPECT_LT(ratio, 1.8);
}

TEST(Em3dShape, PrefetchingHelpsEm3d)
{
    const auto factory = apps::Em3d::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::SharedMemoryPrefetch});
    // Figure 4: EM3D is the application where prefetch clearly wins.
    EXPECT_LT(rs[1].runtimeCycles, rs[0].runtimeCycles);
}

TEST(Em3dShape, MechanismsAllVerifyUnderCrossTraffic)
{
    apps::Em3d app(smallParams());
    core::RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    spec.crossTraffic.bytesPerCycle = 12.0;
    spec.crossTraffic.messageBytes = 64;
    const auto r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified);

    apps::Em3d app2(smallParams());
    spec.crossTraffic.bytesPerCycle = 0.0;
    const auto r0 = core::runApp(app2, spec, false);
    // Less bisection available => slower.
    EXPECT_GT(r.runtimeCycles, r0.runtimeCycles);
}

} // namespace
} // namespace alewife
