/**
 * @file
 * Differential golden tests: the distributed graph apps against their
 * independent sequential references, element-by-element (not just the
 * digest) — BFS parent trees validated structurally against the graph,
 * PageRank ranks against fixed-order power iteration, delta-stepping
 * SSSP against Dijkstra — across mechanisms, graph families, and
 * perturbed generator seeds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/graph/bfs.hh"
#include "apps/graph/pagerank.hh"
#include "apps/graph/sssp.hh"
#include "core/runner.hh"

namespace alewife::apps::graph {
namespace {

using core::Mechanism;
using workload::GraphFamily;

struct GoldenCase
{
    GraphFamily family;
    std::uint64_t seed;
    Mechanism mech;
};

GraphAppParams
params(const GoldenCase &c)
{
    GraphAppParams p;
    p.graph.family = c.family;
    p.graph.vertices = 400;
    p.graph.avgDegree = 5;
    p.graph.nprocs = 16;
    p.graph.seed = c.seed;
    p.iters = 3;
    p.delta = 6;
    return p;
}

core::RunSpec
spec16(Mechanism mech)
{
    core::RunSpec spec;
    spec.machine.meshX = 4;
    spec.machine.meshY = 4;
    spec.mechanism = mech;
    return spec;
}

/** An edge u->v exists in the graph. */
bool
hasEdge(const workload::PartitionedGraph &g, std::int32_t u,
        std::int32_t v)
{
    for (std::int32_t k = g.outRow[u]; k < g.outRow[u + 1]; ++k)
        if (g.outDst[k] == v)
            return true;
    return false;
}

class GraphGolden : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GraphGolden, BfsParentTreeIsValidAndMatchesReference)
{
    const auto c = GetParam();
    Bfs app(params(c));
    const auto r = core::runApp(app, spec16(c.mech), false);
    ASSERT_TRUE(r.verified);

    const auto &g = app.graph();
    const auto &ref = app.bfsRef();
    const auto depth = app.resultDepth();
    const auto parent = app.resultParent();
    ASSERT_EQ(depth.size(), std::size_t(g.n));

    for (std::int32_t v = 0; v < g.n; ++v) {
        // Exact agreement with the sequential level-synchronous BFS
        // (the parent tree is deterministic: min in-neighbour one
        // level up), plus structural validity of the tree itself.
        EXPECT_EQ(depth[v], ref.depth[v]) << "v=" << v;
        EXPECT_EQ(parent[v], ref.parent[v]) << "v=" << v;
        if (depth[v] > 0) {
            const std::int32_t pv = parent[v];
            ASSERT_GE(pv, 0);
            EXPECT_EQ(depth[pv] + 1, depth[v]) << "v=" << v;
            EXPECT_TRUE(hasEdge(g, pv, v))
                << pv << "->" << v << " not an edge";
        } else if (depth[v] == 0) {
            EXPECT_EQ(parent[v], v); // the root
        } else {
            EXPECT_EQ(parent[v], -1); // unreached
        }
    }
}

TEST_P(GraphGolden, PagerankMatchesFixedOrderPowerIteration)
{
    const auto c = GetParam();
    for (const auto variant : {Pagerank::Variant::SyncPull,
                               Pagerank::Variant::AsyncPush}) {
        Pagerank app(params(c), variant);
        const auto r = core::runApp(app, spec16(c.mech), false);
        ASSERT_TRUE(r.verified);

        const auto &ref = app.refRanks();
        const auto got = app.resultRanks();
        ASSERT_EQ(got.size(), ref.size());
        double l1 = 0.0;
        for (std::size_t v = 0; v < ref.size(); ++v) {
            l1 += std::abs(got[v] - ref[v]);
            // Both sides accumulate in in-edge CSR order, so the
            // agreement is bit-exact, not merely within tolerance.
            EXPECT_EQ(got[v], ref[v]) << "v=" << v;
        }
        EXPECT_LT(l1, 1e-10);
    }
}

TEST_P(GraphGolden, SsspMatchesDijkstra)
{
    const auto c = GetParam();
    Sssp app(params(c));
    const auto r = core::runApp(app, spec16(c.mech), false);
    ASSERT_TRUE(r.verified);

    // Delta-stepping vs Dijkstra: genuinely different algorithms,
    // identical integer distances (-1 = unreachable on both sides).
    const auto &ref = app.refDist();
    const auto got = app.resultDist();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v)
        EXPECT_EQ(got[v], ref[v]) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSeedsMechs, GraphGolden,
    ::testing::Values(
        GoldenCase{GraphFamily::Uniform, 5, Mechanism::SharedMemory},
        GoldenCase{GraphFamily::Uniform, 5, Mechanism::MpPolling},
        GoldenCase{GraphFamily::RMat, 6, Mechanism::SharedMemory},
        GoldenCase{GraphFamily::RMat, 6, Mechanism::MpPolling},
        GoldenCase{GraphFamily::Grid2d, 7, Mechanism::MpPolling},
        GoldenCase{GraphFamily::RMat, 8, Mechanism::MpPolling}),
    [](const auto &info) {
        const auto &c = info.param;
        // gtest parameter names must be alphanumeric.
        const char *m = c.mech == Mechanism::SharedMemory ? "SM"
                        : c.mech == Mechanism::MpPolling  ? "MPP"
                                                          : "MPI";
        return std::string(workload::graphFamilyName(c.family)) + "S"
               + std::to_string(c.seed) + m;
    });

TEST(GraphGoldenCross, PullAndPushPagerankAgreeBitExactly)
{
    GoldenCase c{GraphFamily::RMat, 9, Mechanism::MpInterrupt};
    Pagerank pull(params(c), Pagerank::Variant::SyncPull);
    Pagerank push(params(c), Pagerank::Variant::AsyncPush);
    ASSERT_TRUE(core::runApp(pull, spec16(c.mech), false).verified);
    ASSERT_TRUE(core::runApp(push, spec16(c.mech), false).verified);
    EXPECT_EQ(pull.resultRanks(), push.resultRanks());
}

} // namespace
} // namespace alewife::apps::graph
