/**
 * @file
 * ICCG integration tests: numeric verification plus the Section 4.3
 * qualitative findings (interrupt overhead, polling advantage).
 */

#include <gtest/gtest.h>

#include "apps/iccg.hh"
#include "core/experiments.hh"

namespace alewife {
namespace {

using core::Mechanism;

apps::Iccg::Params
smallParams()
{
    apps::Iccg::Params p;
    p.matrix.rows = 800;
    p.matrix.avgInEdges = 3;
    p.matrix.band = 48;
    p.matrix.nprocs = 32;
    p.matrix.seed = 5;
    return p;
}

class IccgAllMechanisms : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(IccgAllMechanisms, MatchesSequentialReference)
{
    apps::Iccg app(smallParams());
    core::RunSpec spec;
    spec.mechanism = GetParam();
    const core::RunResult r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << "got " << r.checksum << " want " << r.reference;
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, IccgAllMechanisms,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(IccgShape, PollingBeatsInterruptsClearly)
{
    const auto factory = apps::Iccg::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base, {Mechanism::MpInterrupt, Mechanism::MpPolling});
    // Section 4.3.3: ICCG shows the largest interrupt -> polling
    // improvement of the four applications.
    EXPECT_LT(rs[1].runtimeCycles, rs[0].runtimeCycles);
}

TEST(IccgShape, InterruptsInflateOverheadAndSync)
{
    const auto factory = apps::Iccg::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base, {Mechanism::MpInterrupt, Mechanism::MpPolling});
    EXPECT_GT(rs[0].avgCycles(TimeCat::MsgOverhead),
              rs[1].avgCycles(TimeCat::MsgOverhead));
}

TEST(IccgShape, SharedMemoryUsesPiggybackedLocks)
{
    apps::Iccg app(smallParams());
    core::RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    const auto r = core::runApp(app, spec, false);
    // Producer-computes: one lock acquisition per non-local-or-local
    // out-edge processed.
    EXPECT_GT(r.counters.lockAcquires, 0u);
    // No interrupts, as for all shared-memory mechanisms.
    EXPECT_EQ(r.counters.interruptsTaken, 0u);
}

TEST(IccgShape, FineGrainedMessagesPerEdge)
{
    apps::Iccg app(smallParams());
    core::RunSpec spec;
    spec.mechanism = Mechanism::MpInterrupt;
    const auto r = core::runApp(app, spec, false);
    // Every cross-processor DAG edge costs exactly one message.
    std::uint64_t cross = 0;
    const auto sys = workload::makeTriangular(smallParams().matrix);
    for (std::int32_t row = 0; row < sys.params.rows; ++row) {
        for (std::int32_t k = sys.row[row]; k < sys.row[row + 1]; ++k) {
            cross += sys.owner(sys.entries[k].col) != sys.owner(row)
                         ? 1
                         : 0;
        }
    }
    EXPECT_EQ(r.counters.interruptsTaken, cross);
}

} // namespace
} // namespace alewife
