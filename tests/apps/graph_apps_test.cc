/**
 * @file
 * Graph workload-family integration tests: every catalog app
 * self-verifies (bit-audited digest) under every mechanism, at 16 and
 * 64 nodes, with the invariant auditor attached; results are
 * bit-identical with observability attached or detached; and the
 * per-phase traffic accounting feeding the point-to-point cost model
 * is config-independent (the property ext3_graph_sweep relies on).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>

#include "apps/graph/catalog.hh"
#include "core/runner.hh"

namespace alewife::apps::graph {
namespace {

using core::Mechanism;

GraphAppParams
smallParams(workload::GraphFamily f, int nprocs)
{
    GraphAppParams p;
    p.graph.family = f;
    p.graph.vertices = nprocs == 16 ? 400 : 768;
    p.graph.avgDegree = 5;
    p.graph.nprocs = nprocs;
    p.graph.seed = 11;
    p.iters = 2;
    return p;
}

MachineConfig
meshFor(int nprocs)
{
    MachineConfig cfg;
    cfg.meshX = nprocs == 16 ? 4 : 8;
    cfg.meshY = nprocs == 16 ? 4 : 8;
    return cfg;
}

void
runAllAppsAudited(int nprocs, Mechanism mech)
{
    const auto p = smallParams(workload::GraphFamily::Uniform, nprocs);
    for (const CatalogEntry &e : catalog()) {
        auto app = e.make(p)();
        core::RunSpec spec;
        spec.machine = meshFor(nprocs);
        spec.mechanism = mech;
        spec.audit = true; // InvariantAuditor on for every run
        const auto r = core::runApp(*app, spec, false);
        EXPECT_TRUE(r.verified)
            << e.name << " @" << nprocs << ": got " << r.checksum
            << " want " << r.reference;
        EXPECT_GT(r.runtimeCycles, 0.0);
    }
}

class GraphAllMechanisms : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(GraphAllMechanisms, EveryAppSelfVerifiesAudited16Nodes)
{
    runAllAppsAudited(16, GetParam());
}

TEST_P(GraphAllMechanisms, EveryAppSelfVerifiesAudited64Nodes)
{
    runAllAppsAudited(64, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, GraphAllMechanisms,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(GraphApps, AttachedAndDetachedRunsAreBitIdentical)
{
    const auto p = smallParams(workload::GraphFamily::RMat, 16);
    const auto factory = makeApp("bfs", p);
    for (const Mechanism mech :
         {Mechanism::SharedMemory, Mechanism::MpInterrupt}) {
        core::RunSpec plain;
        plain.machine = meshFor(16);
        plain.mechanism = mech;
        const auto bare = core::runApp(factory, plain);

        const std::string out =
            (std::filesystem::temp_directory_path()
             / "alewife-graph-metrics.json")
                .string();
        core::RunSpec attached = plain;
        attached.audit = true;
        attached.obs.metricsOut = out;
        attached.obs.intervalCycles = 5000;
        const auto obs = core::runApp(factory, attached);

        EXPECT_EQ(bare.checksum, obs.checksum);
        EXPECT_EQ(bare.runtimeCycles, obs.runtimeCycles);
        EXPECT_EQ(bare.simEvents, obs.simEvents);
        EXPECT_EQ(bare.volume.total(), obs.volume.total());

        // The attached run exported the app's traffic metrics.
        std::ifstream in(out);
        ASSERT_TRUE(in.good());
        std::stringstream ss;
        ss << in.rdbuf();
        EXPECT_NE(ss.str().find("graph.sent_values"),
                  std::string::npos);
        EXPECT_NE(ss.str().find("graph.model.predicted_comm_cycles"),
                  std::string::npos);
        std::remove(out.c_str());
    }
}

TEST(GraphApps, TrafficAccountingBalancesAndPricesPositive)
{
    const auto p = smallParams(workload::GraphFamily::RMat, 16);
    for (const char *name : {"bfs", "pagerank-push", "sssp"}) {
        auto app = makeApp(name, p)();
        auto &gapp = dynamic_cast<GraphAppBase &>(*app);
        core::RunSpec spec;
        spec.machine = meshFor(16);
        spec.mechanism = Mechanism::MpPolling;
        core::runApp(*app, spec);

        const TrafficStats &t = gapp.traffic();
        EXPECT_GT(t.totalSent(), 0u) << name;
        EXPECT_GT(t.totalMsgs(), 0u) << name;
        EXPECT_GT(t.phases(), 0u) << name;
        // Every value sent between partitions is received somewhere.
        const auto recv = std::accumulate(t.recvValues.begin(),
                                          t.recvValues.end(),
                                          std::uint64_t{0});
        EXPECT_EQ(t.totalSent(), recv) << name;
        EXPECT_GE(t.sendSkew(), 1.0) << name;
        EXPECT_GT(gapp.costModel().predictCommCycles(t), 0.0) << name;
    }
}

TEST(GraphApps, TrafficIsConfigIndependent)
{
    // One base-configuration run prices every latency/bandwidth
    // variant (the structure of ext3_graph_sweep): the per-phase
    // traffic must not depend on the network parameters.
    const auto p = smallParams(workload::GraphFamily::Uniform, 16);
    const auto runTraffic = [&](double hopNs, double linkMBps) {
        auto app = makeApp("pagerank-push", p)();
        auto &gapp = dynamic_cast<GraphAppBase &>(*app);
        core::RunSpec spec;
        spec.machine = meshFor(16);
        spec.machine.hopNs = hopNs;
        spec.machine.linkMBps = linkMBps;
        spec.mechanism = Mechanism::MpInterrupt;
        core::runApp(*app, spec);
        return gapp.traffic();
    };
    const TrafficStats base = runTraffic(40.0, 45.0);
    const TrafficStats slow = runTraffic(400.0, 9.0);
    EXPECT_EQ(base.phases(), slow.phases());
    EXPECT_EQ(base.sentValues, slow.sentValues);
    EXPECT_EQ(base.recvValues, slow.recvValues);
    EXPECT_EQ(base.sentMsgs, slow.sentMsgs);
    EXPECT_EQ(base.phaseSent, slow.phaseSent);
}

TEST(GraphApps, CostModelMonotoneInLatencyAndBandwidth)
{
    const auto p = smallParams(workload::GraphFamily::RMat, 16);
    auto app = makeApp("bfs", p)();
    auto &gapp = dynamic_cast<GraphAppBase &>(*app);
    core::RunSpec spec;
    spec.machine = meshFor(16);
    spec.mechanism = Mechanism::MpPolling;
    core::runApp(*app, spec);
    const TrafficStats &t = gapp.traffic();

    MachineConfig base = meshFor(16);
    const double c0 = CostModel::fromConfig(base, 6.0)
                          .predictCommCycles(t);
    MachineConfig lat = base;
    lat.hopNs *= 10;
    MachineConfig bw = base;
    bw.linkMBps /= 5;
    EXPECT_GT(CostModel::fromConfig(lat, 6.0).predictCommCycles(t), c0);
    EXPECT_GT(CostModel::fromConfig(bw, 6.0).predictCommCycles(t), c0);
}

TEST(GraphApps, CatalogLookupAndKeys)
{
    EXPECT_NE(findApp("bfs"), nullptr);
    EXPECT_NE(findApp("pagerank"), nullptr);
    EXPECT_NE(findApp("pagerank-push"), nullptr);
    EXPECT_NE(findApp("sssp"), nullptr);
    EXPECT_EQ(findApp("nonesuch"), nullptr);
    EXPECT_EQ(catalogNames().size(), catalog().size());

    // Keys separate apps and any result-affecting parameter.
    const auto p = smallParams(workload::GraphFamily::Uniform, 16);
    auto q = p;
    q.graph.seed = 12;
    EXPECT_NE(catalogKey("bfs", p), catalogKey("sssp", p));
    EXPECT_NE(catalogKey("bfs", p), catalogKey("bfs", q));
    EXPECT_EQ(catalogKey("bfs", p), catalogKey("bfs", p));
}

} // namespace
} // namespace alewife::apps::graph
