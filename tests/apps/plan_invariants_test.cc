/**
 * @file
 * Invariant tests for the applications' communication-plan builders:
 * ghost-slot assignment, expected-count bookkeeping and partition
 * consistency. Plan bugs produce rare, workload-dependent corruption,
 * so these check the structures directly across seeds.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/bipartite.hh"
#include "workload/molecules.hh"
#include "workload/sparse_matrix.hh"
#include "workload/unstructured_mesh.hh"

namespace alewife {
namespace {

class PlanSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlanSeeds, Em3dGhostAccountingBalances)
{
    workload::BipartiteParams p;
    p.nodesPerSide = 640;
    p.degree = 7;
    p.nprocs = 32;
    p.seed = GetParam();
    const auto g = workload::makeBipartite(p);

    // For each consumer, the number of distinct remote sources equals
    // the number of (producer -> consumer) slots across all producers.
    for (int q = 0; q < p.nprocs; ++q) {
        std::set<std::int32_t> distinct_remote;
        const std::int32_t first = g.firstNode(q);
        const std::int32_t count = g.numNodesOn(q);
        for (std::int32_t n = first; n < first + count; ++n) {
            for (std::int32_t k = g.eRow[n]; k < g.eRow[n + 1]; ++k) {
                const std::int32_t src = g.eEdges[k].src;
                if (g.owner(src) != q)
                    distinct_remote.insert(src);
            }
        }
        // Reconstruct what the app's plan builder would compute.
        std::int64_t planned = 0;
        for (std::int32_t src : distinct_remote) {
            EXPECT_NE(g.owner(src), q);
            ++planned;
        }
        EXPECT_EQ(planned,
                  static_cast<std::int64_t>(distinct_remote.size()));
    }
}

TEST_P(PlanSeeds, MeshEdgeAssignmentCoversEveryEdgeOnce)
{
    workload::MeshParams p;
    p.nodes = 900;
    p.nprocs = 32;
    p.seed = GetParam();
    const auto m = workload::makeMesh(p);

    // Assignment rule: edge handled by owner(u). Count coverage.
    std::int64_t covered = 0;
    for (const auto &e : m.edges) {
        const int owner = m.owner(e.u);
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, p.nprocs);
        ++covered;
    }
    EXPECT_EQ(covered, static_cast<std::int64_t>(m.edges.size()));
}

TEST_P(PlanSeeds, TriangularOutEdgesAreExactTranspose)
{
    workload::TriangularParams p;
    p.rows = 700;
    p.nprocs = 32;
    p.seed = GetParam();
    const auto t = workload::makeTriangular(p);

    // Build the transpose the way the ICCG app does and verify the
    // total edge count and direction invariants.
    std::vector<std::vector<std::int32_t>> out(t.params.rows);
    for (std::int32_t r = 0; r < t.params.rows; ++r) {
        for (std::int32_t k = t.row[r]; k < t.row[r + 1]; ++k)
            out[t.entries[k].col].push_back(r);
    }
    std::int64_t fwd = 0, bwd = t.row[t.params.rows];
    for (std::int32_t c = 0; c < t.params.rows; ++c) {
        for (std::int32_t r : out[c]) {
            EXPECT_GT(r, c); // strictly lower-triangular transpose
            ++fwd;
        }
    }
    EXPECT_EQ(fwd, bwd);
}

TEST_P(PlanSeeds, MoldynCrossPairsPartitionThePairList)
{
    workload::MoldynParams p;
    p.molecules = 700;
    p.nprocs = 32;
    p.seed = GetParam();
    const auto s = workload::makeMoldyn(p);

    // Every pair is either local to one owner or assigned to exactly
    // one computing processor by the max-owner rule.
    std::int64_t local = 0, cross = 0;
    for (const auto &pr : s.pairs) {
        const int pi = s.owner(pr.i);
        const int pj = s.owner(pr.j);
        if (pi == pj) {
            ++local;
        } else {
            ++cross;
            EXPECT_NE(std::max(pi, pj), std::min(pi, pj));
        }
    }
    EXPECT_EQ(local + cross,
              static_cast<std::int64_t>(s.pairs.size()));
    EXPECT_GT(local, 0);
    EXPECT_GT(cross, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanSeeds,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace alewife
