/**
 * @file
 * MOLDYN integration tests: numeric verification plus the Section 4.4
 * qualitative findings (compute dominance, low lock contention).
 */

#include <gtest/gtest.h>

#include "apps/moldyn.hh"
#include "core/experiments.hh"

namespace alewife {
namespace {

using core::Mechanism;

apps::Moldyn::Params
smallParams()
{
    apps::Moldyn::Params p;
    p.box.molecules = 1024;
    p.box.boxSide = 8.0;
    p.box.cutoff = 1.4;
    p.box.nprocs = 32;
    p.box.seed = 77;
    p.iters = 2;
    return p;
}

class MoldynAllMechanisms : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(MoldynAllMechanisms, MatchesSequentialReference)
{
    apps::Moldyn app(smallParams());
    core::RunSpec spec;
    spec.mechanism = GetParam();
    const core::RunResult r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << "got " << r.checksum << " want " << r.reference;
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, MoldynAllMechanisms,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(MoldynShape, ComputeDominatesEveryMechanism)
{
    const auto factory = apps::Moldyn::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt,
         Mechanism::BulkTransfer});
    for (const auto &r : rs) {
        // Section 4.4.3: the high computation-to-communication ratio
        // masks mechanism differences.
        EXPECT_GT(r.avgCycles(TimeCat::Compute),
                  0.35 * r.runtimeCycles)
            << core::mechanismName(r.mechanism);
    }
}

TEST(MoldynShape, MechanismSpreadIsModest)
{
    const auto factory = apps::Moldyn::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::BulkTransfer});
    const double ratio = rs[0].runtimeCycles / rs[1].runtimeCycles;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(MoldynShape, LockContentionIsLow)
{
    apps::Moldyn app(smallParams());
    core::RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    const auto r = core::runApp(app, spec, false);
    // Section 4.4.3: locks perform well here because of low contention
    // — few retries relative to acquisitions.
    ASSERT_GT(r.counters.lockAcquires, 0u);
    EXPECT_LT(static_cast<double>(r.counters.lockRetries),
              0.2 * static_cast<double>(r.counters.lockAcquires));
}

} // namespace
} // namespace alewife
