/**
 * @file
 * Tests for the stream producer-consumer microbenchmark (the Figure
 * 1/2 regions instrument) and its flow control.
 */

#include <gtest/gtest.h>

#include "apps/stream.hh"
#include "core/experiments.hh"

namespace alewife {
namespace {

using core::Mechanism;

apps::Stream::Params
params()
{
    apps::Stream::Params p;
    p.valuesPerIter = 24;
    p.iters = 3;
    p.computePerValue = 15.0;
    return p;
}

class StreamAllMechanisms : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(StreamAllMechanisms, MatchesSequentialReference)
{
    apps::Stream app(params());
    core::RunSpec spec;
    spec.mechanism = GetParam();
    const core::RunResult r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << "got " << r.checksum << " want " << r.reference;
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, StreamAllMechanisms,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(StreamShape, SequentialConsistencyCannotHideLatency)
{
    // The paper's central claim (Sec. 2.2): under SC, shared memory
    // stalls on every remote reference regardless of available
    // compute slackness, while one-way message passing hides latency.
    apps::Stream::Params slack = params();
    slack.computePerValue = 200.0;
    const auto factory = apps::Stream::factory(slack);
    MachineConfig base;

    // SM grows with latency even with huge per-value slack...
    const auto sm = core::idealLatencySweep(
        factory, base, {Mechanism::SharedMemory}, {15.0, 120.0});
    const double sm_growth = sm[0].points[1].result.runtimeCycles
                             / sm[0].points[0].result.runtimeCycles;
    EXPECT_GT(sm_growth, 1.3);

    // ...while prefetch hides part of it (shallower slope)...
    const auto pf = core::idealLatencySweep(
        factory, base, {Mechanism::SharedMemoryPrefetch},
        {15.0, 120.0});
    const double pf_growth = pf[0].points[1].result.runtimeCycles
                             / pf[0].points[0].result.runtimeCycles;
    EXPECT_LT(pf_growth, sm_growth);
}

TEST(StreamShape, LessSlackMeansMoreLatencySensitivity)
{
    MachineConfig base;
    apps::Stream::Params slack = params();
    slack.computePerValue = 200.0;
    apps::Stream::Params tight = params();
    tight.computePerValue = 2.0;

    auto growth = [&](const apps::Stream::Params &p) {
        const auto s = core::idealLatencySweep(
            apps::Stream::factory(p), base,
            {Mechanism::SharedMemory}, {15.0, 120.0});
        return s[0].points[1].result.runtimeCycles
               / s[0].points[0].result.runtimeCycles;
    };
    // Relative impact of latency is larger when compute is scarce.
    EXPECT_GT(growth(tight), growth(slack));
}

TEST(StreamShape, RingSurvivesSkewedNodes)
{
    // Heavily uneven compute must not corrupt the single ghost buffer
    // (flow-control regression test): verification is the assertion.
    apps::Stream::Params p = params();
    p.iters = 5;
    apps::Stream app(p);
    MachineConfig cfg;
    // Uneven clocking isn't a knob, but a congested corner creates
    // skew: add heavy cross traffic.
    core::RunSpec spec;
    spec.machine = cfg;
    spec.mechanism = Mechanism::MpInterrupt;
    spec.crossTraffic.bytesPerCycle = 14.0;
    const auto r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified);
}

} // namespace
} // namespace alewife
