/**
 * @file
 * UNSTRUC integration tests: numeric verification under every
 * mechanism plus the Section 4.2 qualitative findings.
 */

#include <gtest/gtest.h>

#include "apps/unstruc.hh"
#include "core/experiments.hh"

namespace alewife {
namespace {

using core::Mechanism;

apps::Unstruc::Params
smallParams()
{
    apps::Unstruc::Params p;
    p.mesh.nodes = 600;
    p.mesh.avgDegree = 6;
    p.mesh.nprocs = 32;
    p.mesh.seed = 21;
    p.iters = 2;
    return p;
}

class UnstrucAllMechanisms : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(UnstrucAllMechanisms, MatchesSequentialReference)
{
    apps::Unstruc app(smallParams());
    core::RunSpec spec;
    spec.mechanism = GetParam();
    const core::RunResult r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << "got " << r.checksum << " want " << r.reference;
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, UnstrucAllMechanisms,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(UnstrucShape, LockingShowsUpInSharedMemorySync)
{
    apps::Unstruc app(smallParams());
    core::RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    const auto r = core::runApp(app, spec, false);
    // Section 4.2.3: SM pays locking overhead protecting node updates.
    EXPECT_GT(r.counters.lockAcquires, 0u);
}

TEST(UnstrucShape, MessagePassingAvoidsLocks)
{
    apps::Unstruc app(smallParams());
    core::RunSpec spec;
    spec.mechanism = Mechanism::MpInterrupt;
    const auto r = core::runApp(app, spec, false);
    // Handler atomicity gives mutual exclusion for free (Sec. 4.2.3).
    EXPECT_EQ(r.counters.lockAcquires, 0u);
}

TEST(UnstrucShape, PollingBeatsInterrupts)
{
    const auto factory = apps::Unstruc::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base, {Mechanism::MpInterrupt, Mechanism::MpPolling});
    // Section 4.2.3: the lower per-message overhead of polling lets it
    // outperform the interrupt-based version.
    EXPECT_LT(rs[1].runtimeCycles, rs[0].runtimeCycles);
}

TEST(UnstrucShape, SharedMemoryVolumeExceedsMessagePassing)
{
    const auto factory = apps::Unstruc::factory(smallParams());
    MachineConfig base;
    const auto rs = core::runAllMechanisms(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt});
    EXPECT_GT(rs[0].volume.total(), rs[1].volume.total());
}

} // namespace
} // namespace alewife
