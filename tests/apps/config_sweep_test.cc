/**
 * @file
 * Property suite: application results must be bit-wise independent of
 * machine parameters. Timing knobs (line size, cache size, clock,
 * queue depths, ideal networks, cross-traffic) change *when* things
 * happen, never *what* is computed. Any divergence is a protocol or
 * plumbing bug, so every (config x mechanism) cell runs EM3D and ICCG
 * and checks the checksum against the sequential reference.
 */

#include <gtest/gtest.h>

#include "apps/em3d.hh"
#include "apps/iccg.hh"
#include "core/runner.hh"

namespace alewife {
namespace {

using core::Mechanism;

struct ConfigCase
{
    const char *name;
    MachineConfig cfg;
    net::CrossTrafficConfig cross;
};

std::vector<ConfigCase>
configCases()
{
    std::vector<ConfigCase> out;

    out.push_back({"baseline", MachineConfig{}, {}});

    {
        MachineConfig c;
        c.lineBytes = 32;
        out.push_back({"wide-lines", c, {}});
    }
    {
        MachineConfig c;
        c.cacheBytes = 2048; // constant conflict evictions
        out.push_back({"tiny-cache", c, {}});
    }
    {
        MachineConfig c;
        c.procMhz = 40.0; // relatively slow network
        out.push_back({"fast-clock", c, {}});
    }
    {
        MachineConfig c;
        c.idealNet = true;
        c.idealNetLatencyCycles = 120.0;
        out.push_back({"ideal-high-latency", c, {}});
    }
    {
        MachineConfig c;
        c.niInputQueueSlots = 2;
        c.amInterruptCycles = 150.0; // slow handlers, heavy backpressure
        out.push_back({"starved-ni", c, {}});
    }
    {
        MachineConfig c;
        net::CrossTrafficConfig ct;
        ct.bytesPerCycle = 14.0;
        ct.messageBytes = 64;
        out.push_back({"heavy-cross-traffic", c, ct});
    }
    {
        MachineConfig c;
        c.dirHwPointers = 1; // LimitLESS traps on any sharing
        out.push_back({"one-pointer-directory", c, {}});
    }
    {
        MachineConfig c;
        c.threeHopForwarding = true;
        out.push_back({"three-hop-forwarding", c, {}});
    }
    return out;
}

class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, Mechanism>>
{
};

TEST_P(ConfigSweep, Em3dVerifiesEverywhere)
{
    const ConfigCase cc = configCases()[std::get<0>(GetParam())];
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 256;
    p.graph.degree = 5;
    p.iters = 2;
    apps::Em3d app(p);
    core::RunSpec spec;
    spec.machine = cc.cfg;
    spec.mechanism = std::get<1>(GetParam());
    spec.crossTraffic = cc.cross;
    const auto r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << cc.name << ": got " << r.checksum << " want "
        << r.reference;
}

TEST_P(ConfigSweep, IccgVerifiesEverywhere)
{
    const ConfigCase cc = configCases()[std::get<0>(GetParam())];
    apps::Iccg::Params p;
    p.matrix.rows = 320;
    apps::Iccg app(p);
    core::RunSpec spec;
    spec.machine = cc.cfg;
    spec.mechanism = std::get<1>(GetParam());
    spec.crossTraffic = cc.cross;
    const auto r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << cc.name << ": got " << r.checksum << " want "
        << r.reference;
}

std::string
caseName(
    const ::testing::TestParamInfo<std::tuple<int, Mechanism>> &info)
{
    // Braced initializers can't live inside the macro argument list
    // (commas inside braces are not protected), so name here.
    static const char *cfg_names[] = {
        "baseline",     "wideLines", "tinyCache",  "fastClock",
        "idealHighLat", "starvedNi", "heavyCross", "onePtrDir",
        "threeHopFwd"};
    std::string n = cfg_names[std::get<0>(info.param)];
    switch (std::get<1>(info.param)) {
      case Mechanism::SharedMemory: n += "_SM"; break;
      case Mechanism::SharedMemoryPrefetch: n += "_SMPF"; break;
      case Mechanism::MpInterrupt: n += "_MPI"; break;
      case Mechanism::MpPolling: n += "_MPP"; break;
      case Mechanism::BulkTransfer: n += "_BULK"; break;
      default: n += "_X"; break;
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(Mechanism::SharedMemory,
                                         Mechanism::SharedMemoryPrefetch,
                                         Mechanism::MpInterrupt,
                                         Mechanism::MpPolling,
                                         Mechanism::BulkTransfer)),
    caseName);

} // namespace
} // namespace alewife
