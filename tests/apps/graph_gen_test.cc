/**
 * @file
 * Property tests of the synthetic graph generators: seeded
 * determinism, family shape (R-MAT skew vs uniform balance), block
 * partition balance, transpose integrity, and cross-consistency of
 * the three sequential references.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "workload/graph.hh"

namespace alewife::workload {
namespace {

GraphParams
baseParams(GraphFamily f)
{
    GraphParams p;
    p.family = f;
    p.vertices = 2048;
    p.avgDegree = 8;
    p.nprocs = 16;
    p.seed = 42;
    return p;
}

std::vector<std::int32_t>
inDegrees(const PartitionedGraph &g)
{
    std::vector<std::int32_t> d(g.n);
    for (std::int32_t v = 0; v < g.n; ++v)
        d[v] = g.inRow[v + 1] - g.inRow[v];
    return d;
}

TEST(GraphGen, SameSeedIsBitIdentical)
{
    for (const GraphFamily f : {GraphFamily::Uniform, GraphFamily::RMat,
                                GraphFamily::Grid2d}) {
        const auto a = makeGraph(baseParams(f));
        const auto b = makeGraph(baseParams(f));
        EXPECT_EQ(a.n, b.n);
        EXPECT_EQ(a.outRow, b.outRow);
        EXPECT_EQ(a.outDst, b.outDst);
        EXPECT_EQ(a.outW, b.outW);
        EXPECT_EQ(a.inRow, b.inRow);
        EXPECT_EQ(a.inSrc, b.inSrc);
        EXPECT_EQ(a.inW, b.inW);
    }
}

TEST(GraphGen, DifferentSeedsDiffer)
{
    for (const GraphFamily f :
         {GraphFamily::Uniform, GraphFamily::RMat}) {
        auto p = baseParams(f);
        const auto a = makeGraph(p);
        p.seed = 43;
        const auto b = makeGraph(p);
        EXPECT_NE(a.outDst, b.outDst) << graphFamilyName(f);
    }
    // Grid2d edges are structural; only the weights are seeded.
    auto p = baseParams(GraphFamily::Grid2d);
    const auto a = makeGraph(p);
    p.seed = 43;
    const auto b = makeGraph(p);
    EXPECT_EQ(a.outDst, b.outDst);
    EXPECT_NE(a.outW, b.outW);
}

TEST(GraphGen, FamilyShapes)
{
    // Uniform draws avgDegree out-neighbours per vertex (a draw is
    // abandoned only after eight consecutive self-loop retries).
    const auto uni = makeGraph(baseParams(GraphFamily::Uniform));
    EXPECT_EQ(uni.n, 2048);
    EXPECT_LE(uni.numEdges(), 2048 * 8);
    EXPECT_GE(uni.numEdges(), 2048 * 8 - 8);

    // R-MAT rounds the vertex count up to a power of two.
    auto pr = baseParams(GraphFamily::RMat);
    pr.vertices = 1500;
    const auto rmat = makeGraph(pr);
    EXPECT_EQ(rmat.n, 2048);
    EXPECT_GT(rmat.numEdges(), 0);

    // Grid2d rounds down to a square; interior vertices have 4
    // out-neighbours, none has more.
    auto pg = baseParams(GraphFamily::Grid2d);
    pg.vertices = 2047;
    const auto grid = makeGraph(pg);
    EXPECT_EQ(grid.n, 45 * 45);
    std::int32_t maxDeg = 0;
    for (std::int32_t v = 0; v < grid.n; ++v)
        maxDeg = std::max(maxDeg, grid.outDegree(v));
    EXPECT_EQ(maxDeg, 4);
}

TEST(GraphGen, RmatInDegreeSkewExceedsUniform)
{
    const auto uni = makeGraph(baseParams(GraphFamily::Uniform));
    const auto rmat = makeGraph(baseParams(GraphFamily::RMat));
    const auto du = inDegrees(uni);
    const auto dr = inDegrees(rmat);
    const auto maxU = *std::max_element(du.begin(), du.end());
    const auto maxR = *std::max_element(dr.begin(), dr.end());
    // Uniform in-degrees are Poisson-like around avgDegree; the
    // power-law generator must concentrate far more on its hubs.
    EXPECT_GT(maxR, 2 * maxU);
    EXPECT_GT(maxR, 4 * 8); // a hub at least 4x the mean degree
}

TEST(GraphGen, PartitionIsBalancedAndCoversAllVertices)
{
    for (const GraphFamily f : {GraphFamily::Uniform, GraphFamily::RMat,
                                GraphFamily::Grid2d}) {
        const auto g = makeGraph(baseParams(f));
        const int np = g.params.nprocs;
        const std::int32_t cap = (g.n + np - 1) / np;
        std::int64_t covered = 0;
        for (int p = 0; p < np; ++p) {
            const std::int32_t cnt = g.numVerticesOn(p);
            EXPECT_LE(cnt, cap);
            EXPECT_GE(cnt, 0);
            for (std::int32_t v = g.firstVertex(p);
                 v < g.firstVertex(p) + cnt; ++v)
                EXPECT_EQ(g.owner(v), p);
            covered += cnt;
        }
        EXPECT_EQ(covered, g.n) << graphFamilyName(f);
    }
}

TEST(GraphGen, TransposeMatchesOutEdges)
{
    const auto g = makeGraph(baseParams(GraphFamily::RMat));
    ASSERT_EQ(g.inSrc.size(), g.outDst.size());
    // Sources ascend within each vertex's in-edge list (the property
    // the deterministic BFS min-parent rule and the fixed PageRank
    // summation order rely on).
    for (std::int32_t v = 0; v < g.n; ++v)
        for (std::int32_t k = g.inRow[v] + 1; k < g.inRow[v + 1]; ++k)
            EXPECT_LE(g.inSrc[k - 1], g.inSrc[k]);
    // Every out-edge appears exactly once in the transpose with the
    // same weight: compare multisets of (src, dst, w) triples.
    std::vector<std::uint64_t> fwd, rev;
    fwd.reserve(g.outDst.size());
    rev.reserve(g.inSrc.size());
    for (std::int32_t u = 0; u < g.n; ++u)
        for (std::int32_t k = g.outRow[u]; k < g.outRow[u + 1]; ++k)
            fwd.push_back((std::uint64_t(u) << 36)
                          | (std::uint64_t(g.outDst[k]) << 8)
                          | std::uint64_t(g.outW[k]));
    for (std::int32_t v = 0; v < g.n; ++v)
        for (std::int32_t k = g.inRow[v]; k < g.inRow[v + 1]; ++k)
            rev.push_back((std::uint64_t(g.inSrc[k]) << 36)
                          | (std::uint64_t(v) << 8)
                          | std::uint64_t(g.inW[k]));
    std::sort(fwd.begin(), fwd.end());
    std::sort(rev.begin(), rev.end());
    EXPECT_EQ(fwd, rev);
}

TEST(GraphGen, ReferencesAreMutuallyConsistent)
{
    for (const GraphFamily f :
         {GraphFamily::Uniform, GraphFamily::Grid2d}) {
        const auto g = makeGraph(baseParams(f));
        const auto root = g.defaultRoot();
        const auto bfs = bfsReference(g, root);
        const auto dist = dijkstraReference(g, root);
        ASSERT_EQ(bfs.depth.size(), std::size_t(g.n));
        ASSERT_EQ(dist.size(), std::size_t(g.n));
        EXPECT_EQ(bfs.depth[root], 0);
        EXPECT_EQ(bfs.parent[root], root);
        for (std::int32_t v = 0; v < g.n; ++v) {
            // Reachability agrees between BFS and Dijkstra; weighted
            // distance is bounded by hops * weight range.
            EXPECT_EQ(bfs.depth[v] < 0, dist[v] < 0);
            if (bfs.depth[v] >= 0) {
                EXPECT_GE(dist[v], bfs.depth[v]); // weights >= 1
                EXPECT_LE(dist[v],
                          std::int64_t(bfs.depth[v])
                              * g.params.maxWeight);
            }
        }
    }
    // PageRank mass: ranks are positive and sum to at most 1 (dangling
    // vertices leak mass; with none, the sum is exactly conserved).
    const auto g = makeGraph(baseParams(GraphFamily::Uniform));
    const auto pr = pagerankReference(g, 4, 0.85);
    const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
    EXPECT_GT(sum, 0.0);
    EXPECT_LE(sum, 1.0 + 1e-9);
    for (const double r : pr)
        EXPECT_GT(r, 0.0);
}

} // namespace
} // namespace alewife::workload
