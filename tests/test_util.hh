/**
 * @file
 * Shared helpers for machine-level tests.
 */

#ifndef ALEWIFE_TESTS_TEST_UTIL_HH
#define ALEWIFE_TESTS_TEST_UTIL_HH

#include "machine/machine.hh"

namespace alewife::test {

/** A small 8-node machine for fast protocol tests. */
inline MachineConfig
smallConfig()
{
    MachineConfig c;
    c.meshX = 4;
    c.meshY = 2;
    return c;
}

/** The paper's 32-node Alewife. */
inline MachineConfig
alewifeConfig()
{
    return MachineConfig{};
}

} // namespace alewife::test

#endif // ALEWIFE_TESTS_TEST_UTIL_HH
