/**
 * @file
 * Calibration against the paper's published Alewife costs (Figure 3
 * table, Section 3.2): local miss 11 cycles, remote clean read ~38-42
 * cycles + 1.6/hop, remote dirty ~63, 2-party write ~66, LimitLESS
 * software handling ~425+, null active message 102 cycles + 0.8/hop,
 * 1-way 24-byte packet ~15 cycles, bisection 18 bytes/cycle.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"

namespace alewife {
namespace {

using proc::Ctx;

struct Probe
{
    Addr a = 0;
    double cycles = 0.0;
};

/** Measure the stall of one access on node 0. */
template <typename Fn>
double
measure(Machine &m, Addr addr, Fn &&access, int warm_writer = -1)
{
    struct State
    {
        Addr a;
        double out = 0.0;
        int warm;
    } st{addr, 0.0, warm_writer};

    auto prog = [&st, &access](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == st.warm) {
            co_await ctx.writeD(st.a, 42.0); // dirty the line remotely
        } else if (ctx.self() == 0) {
            co_await ctx.compute(4000); // let any warmer finish
            const Tick before = ctx.proc().localNow();
            co_await access(ctx, st.a);
            st.out = ticksToCycles(ctx.proc().localNow() - before);
        }
        co_return;
    };
    m.run(prog);
    return st.out;
}

TEST(Calibration, LocalCleanMissIsAboutElevenCycles)
{
    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 0);
    const double c = measure(
        m, a, [](Ctx &ctx, Addr x) { return ctx.read(x); });
    EXPECT_GE(c, 10.0);
    EXPECT_LE(c, 13.0);
}

TEST(Calibration, RemoteCleanReadMissNearFortyCycles)
{
    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    // Home at node 1: one hop from node 0.
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);
    const double c = measure(
        m, a, [](Ctx &ctx, Addr x) { return ctx.read(x); });
    EXPECT_GE(c, 33.0);
    EXPECT_LE(c, 52.0);
}

TEST(Calibration, RemoteDirtyReadMissNearSixtyCycles)
{
    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);
    const double c = measure(
        m, a, [](Ctx &ctx, Addr x) { return ctx.read(x); },
        /*warm_writer=*/2);
    EXPECT_GE(c, 52.0);
    EXPECT_LE(c, 80.0);
}

TEST(Calibration, TwoPartyWriteMissNearSixtySixCycles)
{
    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);

    struct State
    {
        Addr a;
        double out = 0.0;
    } st{a, 0.0};

    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 2) {
            co_await ctx.read(st.a); // become a sharer
        } else if (ctx.self() == 0) {
            co_await ctx.compute(4000);
            const Tick before = ctx.proc().localNow();
            co_await ctx.writeD(st.a, 1.0); // invalidate node 2
            st.out = ticksToCycles(ctx.proc().localNow() - before);
        }
        co_return;
    };
    m.run(prog);
    EXPECT_GE(st.out, 50.0);
    EXPECT_LE(st.out, 90.0);
}

TEST(Calibration, LimitlessReadCostsHundredsOfCycles)
{
    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);

    struct State
    {
        Addr a;
        double out = 0.0;
    } st{a, 0.0};

    // Nodes 2..12 become sharers (beyond the 5 hardware pointers);
    // node 0 reads last and eats the software-handling latency.
    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() >= 2 && ctx.self() <= 12) {
            co_await ctx.compute(100 * ctx.self());
            co_await ctx.read(st.a);
        } else if (ctx.self() == 0) {
            co_await ctx.compute(8000);
            const Tick before = ctx.proc().localNow();
            co_await ctx.read(st.a);
            st.out = ticksToCycles(ctx.proc().localNow() - before);
        }
        co_return;
    };
    m.run(prog);
    EXPECT_GE(st.out, 250.0);
    EXPECT_LE(st.out, 800.0);
    EXPECT_GT(m.counters().limitlessTraps, 0u);
}

TEST(Calibration, NullActiveMessageNearHundredCycles)
{
    MachineConfig cfg;
    Machine m(cfg, proc::SyncStyle::MessagePassing,
              msg::RecvMode::Interrupt);

    struct State
    {
        msg::HandlerId h = -1;
        bool got = false;
        Tick sentAt = 0;
        Tick gotAt = 0;
    } st;
    st.h = m.handlers().add([&st, &m](msg::HandlerEnv &) {
        st.got = true;
        st.gotAt = m.eq().now();
    });

    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0) {
            const Tick before = ctx.proc().localNow();
            st.sentAt = before;
            co_await ctx.send(1, st.h, {});
        }
        co_return;
    };
    m.run(prog);
    EXPECT_TRUE(st.got);
    // End-to-end: send overhead + 1 hop transit + interrupt + dispatch.
    // The handler fires at arrival; add its charge (interrupt+dispatch)
    // conceptually — compare against the 102 + 0.8/hop budget loosely.
    const double transit = ticksToCycles(st.gotAt - st.sentAt);
    const double interrupt_side =
        MachineConfig{}.amInterruptCycles + MachineConfig{}.amDispatchCycles;
    const double total = transit + interrupt_side;
    EXPECT_GE(total, 85.0);
    EXPECT_LE(total, 120.0);
}

TEST(Calibration, OneWayPacketLatencyNearFifteenCycles)
{
    MachineConfig cfg;
    const double lat = cfg.onewayLatencyCycles(
        24, static_cast<int>(cfg.averageHops() + 0.5));
    EXPECT_GE(lat, 12.0);
    EXPECT_LE(lat, 20.0);
}

TEST(Calibration, BisectionIsEighteenBytesPerCycle)
{
    MachineConfig cfg;
    EXPECT_NEAR(cfg.bisectionBytesPerCycle(), 18.0, 0.01);
    EXPECT_NEAR(cfg.bisectionMBps(), 360.0, 0.5);
}

TEST(Calibration, ClockScalingChangesRelativeNetworkSpeed)
{
    MachineConfig slow;
    slow.procMhz = 14.0;
    MachineConfig fast;
    fast.procMhz = 20.0;
    // In processor cycles, the asynchronous network looks faster on the
    // slower-clocked machine.
    EXPECT_LT(slow.onewayLatencyCycles(24, 5),
              fast.onewayLatencyCycles(24, 5));
    EXPECT_GT(slow.linkBytesPerCycle(), fast.linkBytesPerCycle());
}

} // namespace
} // namespace alewife
