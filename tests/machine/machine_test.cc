/**
 * @file
 * Machine-level behaviour tests: run lifecycle, architectural debug
 * reads, quiescing, and per-node wiring.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

sim::Thread
trivialProgram(Ctx &ctx)
{
    co_await ctx.compute(10.0 * (ctx.self() + 1));
}

TEST(Machine, RunReturnsSlowestCompletion)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Tick finish = m.run(trivialProgram);
    EXPECT_NEAR(ticksToCycles(finish), 10.0 * m.nodes(), 0.5);
    EXPECT_EQ(m.finishTick(), finish);
}

TEST(Machine, BreakdownSumAggregatesAllNodes)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    m.run(trivialProgram);
    const TimeBreakdown sum = m.breakdownSum();
    // Sum of 10,20,...,80 cycles of compute.
    const double expect = 10.0 * m.nodes() * (m.nodes() + 1) / 2.0;
    EXPECT_NEAR(ticksToCycles(sum.get(TimeCat::Compute)), expect, 1.0);
}

sim::Thread
dirtyProgram(Ctx &ctx, Addr a)
{
    if (ctx.self() == 3)
        co_await ctx.writeD(a, 4.25);
    co_return;
}

TEST(Machine, DebugWordSeesDirtyCacheLines)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 0);
    m.run([a](Ctx &ctx) { return dirtyProgram(ctx, a); });
    // The line is still Modified in node 3's cache; memory is stale,
    // but the architectural read must see the fresh value.
    EXPECT_DOUBLE_EQ(m.debugDouble(a), 4.25);
}

TEST(Machine, NodeAccessorsAreConsistent)
{
    Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
              msg::RecvMode::Polling);
    for (int i = 0; i < m.nodes(); ++i) {
        EXPECT_EQ(m.procAt(i).id(), i);
        EXPECT_EQ(m.niAt(i).mode(), msg::RecvMode::Polling);
        EXPECT_EQ(m.cacheAt(i).lineBytes(),
                  m.config().lineBytes);
    }
}

sim::Thread
deadlockProgram(Ctx &ctx, bool &flag)
{
    if (ctx.self() == 0) {
        // Waits on a flag nobody ever sets.
        co_await ctx.waitUntil([&flag]() { return flag; });
    }
    co_return;
}

TEST(MachineDeath, DeadlockIsDiagnosedNotHung)
{
    EXPECT_DEATH(
        {
            Machine m(smallConfig(), proc::SyncStyle::MessagePassing,
                      msg::RecvMode::Interrupt);
            bool flag = false;
            m.run([&flag](Ctx &ctx) {
                return deadlockProgram(ctx, flag);
            });
        },
        "deadlock");
}

TEST(MachineDeath, TickLimitAborts)
{
    EXPECT_DEATH(
        {
            Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
                      msg::RecvMode::Interrupt);
            m.run([](Ctx &ctx) -> sim::Thread {
                co_await ctx.compute(1e9);
            },
                  cyclesToTicks(std::uint64_t(1000)));
        },
        "limit");
}

sim::Thread
volumeProgram(Ctx &ctx, Addr a)
{
    if (ctx.self() == 0)
        co_await ctx.read(a);
    co_return;
}

TEST(Machine, VolumeReflectsProtocolTraffic)
{
    Machine m(smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.run([a](Ctx &ctx) { return volumeProgram(ctx, a); });
    // One remote GetS (16 request bytes) + one Data (8 + 16).
    EXPECT_EQ(m.volume().get(VolCat::Requests), 16u);
    EXPECT_EQ(m.volume().get(VolCat::Headers), 8u);
    EXPECT_EQ(m.volume().get(VolCat::Data), 16u);
}

} // namespace
} // namespace alewife
