/**
 * @file
 * Parallel window engine: bit-identity goldens against the serial
 * kernel. The engine's whole contract is that `threads` is invisible
 * in the results — every statistic, checksum, event count and timing
 * of a parallel run must equal the serial run exactly, across apps,
 * mechanisms, worker counts, cross-traffic and schedule perturbation.
 * The suite also pins the eligibility fallbacks (traced runs and
 * non-parallel-capable hooks silently use the serial kernel).
 */

#include <gtest/gtest.h>

#include <optional>

#include "apps/em3d.hh"
#include "apps/graph/catalog.hh"
#include "apps/iccg.hh"
#include "ckpt/ckpt.hh"
#include "ckpt/restore.hh"
#include "core/runner.hh"
#include "sim/trace.hh"

namespace alewife {
namespace {

using core::Mechanism;
using core::RunResult;
using core::RunSpec;

/** Every field of two RunResults must agree exactly (bit-identity). */
void
expectIdentical(const RunResult &serial, const RunResult &par,
                const std::string &what)
{
    EXPECT_EQ(serial.runtimeCycles, par.runtimeCycles) << what;
    EXPECT_EQ(serial.checksum, par.checksum) << what;
    EXPECT_EQ(serial.simEvents, par.simEvents) << what;
    EXPECT_EQ(serial.volume.total(), par.volume.total()) << what;
    for (const CounterField &f : machineCounterFields()) {
        EXPECT_EQ(serial.counters.*(f.member), par.counters.*(f.member))
            << what << " counter " << f.name;
    }
    for (std::size_t i = 0; i < serial.breakdown.ticks.size(); ++i) {
        EXPECT_EQ(serial.breakdown.ticks[i], par.breakdown.ticks[i])
            << what << " breakdown[" << i << "]";
    }
}

RunResult
runEm3d(Mechanism mech, int threads, double cross = 0.0,
        bool perturb = false)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    apps::Em3d app(p);
    RunSpec spec;
    spec.mechanism = mech;
    spec.threads = threads;
    spec.crossTraffic.bytesPerCycle = cross;
    if (perturb) {
        spec.perturb.tieBreak = true;
        spec.perturb.seed = 12345;
    }
    return core::runApp(app, spec);
}

RunResult
runIccg(Mechanism mech, int threads)
{
    apps::Iccg::Params p;
    p.matrix.rows = 600;
    apps::Iccg app(p);
    RunSpec spec;
    spec.mechanism = mech;
    spec.threads = threads;
    return core::runApp(app, spec);
}

RunResult
runBfs(Mechanism mech, int threads)
{
    apps::graph::GraphAppParams p;
    p.graph.family = workload::GraphFamily::Uniform;
    p.graph.vertices = 600;
    p.graph.avgDegree = 5;
    p.graph.nprocs = 32;
    p.graph.seed = 11;
    p.iters = 2;
    for (const auto &e : apps::graph::catalog()) {
        if (std::string(e.name) == "bfs") {
            auto app = e.make(p)();
            RunSpec spec;
            spec.mechanism = mech;
            spec.threads = threads;
            return core::runApp(*app, spec);
        }
    }
    ADD_FAILURE() << "no bfs app in the graph catalog";
    return {};
}

class ParallelIdentity : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(ParallelIdentity, Em3dBitIdenticalAt2And4Workers)
{
    const RunResult serial = runEm3d(GetParam(), 1);
    EXPECT_EQ(serial.parallelWindows, 0u);
    for (int threads : {2, 4}) {
        const RunResult par = runEm3d(GetParam(), threads);
        EXPECT_GT(par.parallelWindows, 0u)
            << "engine did not engage at threads=" << threads;
        expectIdentical(serial, par,
                        "em3d threads=" + std::to_string(threads));
    }
}

TEST_P(ParallelIdentity, IccgBitIdenticalAt4Workers)
{
    const RunResult serial = runIccg(GetParam(), 1);
    const RunResult par = runIccg(GetParam(), 4);
    EXPECT_GT(par.parallelWindows, 0u);
    expectIdentical(serial, par, "iccg threads=4");
}

TEST_P(ParallelIdentity, GraphBfsBitIdenticalAt4Workers)
{
    const RunResult serial = runBfs(GetParam(), 1);
    const RunResult par = runBfs(GetParam(), 4);
    EXPECT_GT(par.parallelWindows, 0u);
    expectIdentical(serial, par, "bfs threads=4");
    EXPECT_TRUE(par.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, ParallelIdentity,
    ::testing::Values(Mechanism::SharedMemory, Mechanism::MpInterrupt),
    [](const auto &info) {
        return info.param == Mechanism::SharedMemory
                   ? std::string("SM")
                   : std::string("MPI");
    });

TEST(ParallelEngine, CrossTrafficRunBitIdentical)
{
    // Exercises the cross-traffic LP and the serial-order stop cutoff
    // (ticks must go quiet at exactly the serial completion point).
    const RunResult serial = runEm3d(Mechanism::SharedMemory, 1, 10.0);
    const RunResult par = runEm3d(Mechanism::SharedMemory, 4, 10.0);
    EXPECT_GT(par.parallelWindows, 0u);
    expectIdentical(serial, par, "em3d cross-traffic");
}

TEST(ParallelEngine, PerturbedSeedRunBitIdentical)
{
    // Tie-break perturbation forces the gated-live path: RNG draws and
    // seq assignment happen serialized, in exact serial order.
    const RunResult serial =
        runEm3d(Mechanism::MpInterrupt, 1, 0.0, true);
    const RunResult par = runEm3d(Mechanism::MpInterrupt, 4, 0.0, true);
    EXPECT_GT(par.parallelWindows, 0u);
    expectIdentical(serial, par, "em3d perturbed");
}

TEST(ParallelEngine, PerturbedRunDiffersFromUnperturbed)
{
    // Sanity that the perturbed goldens above actually exercise a
    // different schedule (otherwise gated-live is untested).
    const RunResult plain = runEm3d(Mechanism::MpInterrupt, 1);
    const RunResult fuzzed =
        runEm3d(Mechanism::MpInterrupt, 1, 0.0, true);
    EXPECT_NE(plain.simEvents + plain.runtimeCycles,
              fuzzed.simEvents + fuzzed.runtimeCycles);
}

TEST(ParallelEngine, TracedRunFallsBackToSerial)
{
    Trace::enable(TraceCat::Obs, true);
    const RunResult r = runEm3d(Mechanism::SharedMemory, 4);
    Trace::enable(TraceCat::Obs, false);
    EXPECT_EQ(r.parallelWindows, 0u);
    expectIdentical(runEm3d(Mechanism::SharedMemory, 1), r,
                    "traced fallback");
}

TEST(ParallelEngine, NonCapableHooksFallBackToSerial)
{
    // The invariant auditor does not declare parallelCapable(), so an
    // audited run must silently use the serial kernel — and still
    // agree with the unaudited runs bit-for-bit.
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    apps::Em3d app(p);
    RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    spec.threads = 4;
    spec.audit = true;
    const RunResult r = core::runApp(app, spec);
    EXPECT_EQ(r.parallelWindows, 0u);
    expectIdentical(runEm3d(Mechanism::SharedMemory, 1), r,
                    "audited fallback");
}

TEST(ParallelEngine, SingleThreadSpecNeverEngages)
{
    const RunResult r = runEm3d(Mechanism::SharedMemory, 1);
    EXPECT_EQ(r.parallelWindows, 0u);
}

// ---------------------------------------------------------------------
// Checkpoint interop. The snapshot is a full-state capture (caches,
// directories, NI queues, RNG streams, counters), so comparing dumps
// audits far more machine state than RunResult can.
// ---------------------------------------------------------------------

/** Runs to completion, then captures the finished machine. */
struct SaveAfterRun : core::RunDriver
{
    std::optional<ckpt::Snapshot> snap;

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        const Tick t = m.run(f);
        snap = ckpt::save(m);
        return t;
    }
};

/** Serial run that snapshots at an event count, like periodic saves. */
struct SaveMidRun : core::RunDriver
{
    std::uint64_t at;
    std::optional<ckpt::Snapshot> snap;

    explicit SaveMidRun(std::uint64_t at_) : at(at_) {}

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        m.start(f);
        if (m.stepUntilEvents(at))
            snap = ckpt::save(m);
        while (m.stepOne()) {
        }
        return m.finishRun();
    }
};

/** Resumes from a snapshot and completes the run serially. */
struct ResumeDriver : core::RunDriver
{
    const ckpt::Snapshot &snap;

    explicit ResumeDriver(const ckpt::Snapshot &s) : snap(s) {}

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        const ckpt::ResumeResult r = ckpt::resume(m, f, snap);
        EXPECT_TRUE(r.ok) << r.error;
        while (m.stepOne()) {
        }
        return m.finishRun();
    }
};

TEST(ParallelCkpt, CaptureAfterParallelRunMatchesSerial)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    const auto factory = apps::Em3d::factory(p);

    RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    SaveAfterRun serial;
    core::runApp(factory, spec, true, nullptr, &serial);

    spec.threads = 4;
    SaveAfterRun par;
    core::runApp(factory, spec, true, nullptr, &par);

    ASSERT_TRUE(serial.snap && par.snap);
    EXPECT_EQ(serial.snap->doc.dump(), par.snap->doc.dump());
}

TEST(ParallelCkpt, ResumedRunMatchesStraightParallelRun)
{
    // A snapshot taken mid-serial-run, resumed and completed serially,
    // must agree bit-for-bit with a straight 4-worker run — checkpoint
    // goldens stay valid when the baseline comes from the parallel
    // engine.
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    const auto factory = apps::Em3d::factory(p);

    RunSpec spec;
    spec.mechanism = Mechanism::MpInterrupt;
    const RunResult probe = core::runApp(factory, spec);

    SaveMidRun saver(probe.simEvents / 2);
    core::runApp(factory, spec, true, nullptr, &saver);
    ASSERT_TRUE(saver.snap.has_value());

    ResumeDriver resumer(*saver.snap);
    const RunResult resumed =
        core::runApp(factory, spec, true, nullptr, &resumer);

    spec.threads = 4;
    const RunResult par = core::runApp(factory, spec);
    EXPECT_GT(par.parallelWindows, 0u);
    expectIdentical(resumed, par, "resume vs parallel");
}

} // namespace
} // namespace alewife
