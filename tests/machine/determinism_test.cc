/**
 * @file
 * Determinism tests: two identical runs of the full machine must agree
 * bit-for-bit in timing, statistics and results. Everything in the
 * kernel (event ordering, tie-breaking, RNG seeding) exists to make
 * this true; any divergence means irreproducible experiments.
 */

#include <gtest/gtest.h>

#include "apps/em3d.hh"
#include "apps/moldyn.hh"
#include "core/runner.hh"

namespace alewife {
namespace {

using core::Mechanism;

core::RunResult
runOnce(Mechanism mech, double cross)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    apps::Em3d app(p);
    core::RunSpec spec;
    spec.mechanism = mech;
    spec.crossTraffic.bytesPerCycle = cross;
    return core::runApp(app, spec);
}

class Determinism : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(Determinism, IdenticalRunsAgreeExactly)
{
    const auto a = runOnce(GetParam(), 0.0);
    const auto b = runOnce(GetParam(), 0.0);
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.volume.total(), b.volume.total());
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected);
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
}

TEST_P(Determinism, CrossTrafficRunsAgreeExactly)
{
    const auto a = runOnce(GetParam(), 10.0);
    const auto b = runOnce(GetParam(), 10.0);
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.simEvents, b.simEvents);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, Determinism,
    ::testing::Values(Mechanism::SharedMemory,
                      Mechanism::SharedMemoryPrefetch,
                      Mechanism::MpInterrupt, Mechanism::MpPolling,
                      Mechanism::BulkTransfer),
    [](const auto &info) {
        switch (info.param) {
          case Mechanism::SharedMemory: return std::string("SM");
          case Mechanism::SharedMemoryPrefetch: return std::string("SMPF");
          case Mechanism::MpInterrupt: return std::string("MPI");
          case Mechanism::MpPolling: return std::string("MPP");
          case Mechanism::BulkTransfer: return std::string("BULK");
          default: return std::string("X");
        }
    });

TEST(Determinism, MoldynAgreesAcrossRuns)
{
    auto run = []() {
        apps::Moldyn::Params p;
        p.box.molecules = 400;
        p.iters = 1;
        apps::Moldyn app(p);
        core::RunSpec spec;
        spec.mechanism = Mechanism::BulkTransfer;
        return core::runApp(app, spec);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
}

} // namespace
} // namespace alewife
