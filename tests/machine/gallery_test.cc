/**
 * @file
 * Tests for the Table 1/2 machine gallery and config derivation.
 */

#include <gtest/gtest.h>

#include "machine/gallery.hh"

namespace alewife {
namespace {

TEST(Gallery, ContainsThePaperMachines)
{
    const auto &g = galleryMachines();
    EXPECT_GE(g.size(), 14u);
    EXPECT_NE(galleryFind("MIT Alewife"), nullptr);
    EXPECT_NE(galleryFind("Cray T3E"), nullptr);
    EXPECT_NE(galleryFind("Stanford DASH"), nullptr);
    EXPECT_EQ(galleryFind("PDP-11"), nullptr);
}

TEST(Gallery, AlewifeRowMatchesTheDefaults)
{
    const GalleryEntry *e = galleryFind("MIT Alewife");
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->procMhz, 20.0);
    EXPECT_DOUBLE_EQ(*e->bytesPerCycle, 18.0);
    EXPECT_DOUBLE_EQ(e->localMissCycles, 11.0);
    // Table 2 derived columns (paper: 198 and 1.3).
    EXPECT_NEAR(*e->bytesPerLocalMiss(), 198.0, 0.5);
    EXPECT_NEAR(*e->netLatInLocalMisses(), 15.0 / 11.0, 0.01);
}

TEST(Gallery, MissingDataPropagatesAsNullopt)
{
    const GalleryEntry *t0 = galleryFind("Wisconsin T0");
    ASSERT_NE(t0, nullptr);
    EXPECT_FALSE(t0->bytesPerLocalMiss().has_value());
    EXPECT_TRUE(t0->netLatInLocalMisses().has_value());
}

TEST(Gallery, ToConfigMatchesBisectionAndLatency)
{
    for (const auto &e : galleryMachines()) {
        if (!e.bisectionMBps || !e.netLatencyCycles)
            continue;
        MachineConfig c = e.toConfig();
        c.validate();
        EXPECT_NEAR(c.bisectionMBps(), *e.bisectionMBps, 0.5)
            << e.name;
        const double lat = c.onewayLatencyCycles(
            24, static_cast<int>(c.averageHops() + 0.5));
        // The fit cannot beat the packet's own serialization time on
        // machines whose quoted latency is below it (Intel Delta's
        // 0.68 B/cycle links serialize 24 B in ~36 cycles); otherwise
        // it should land within ~10% of the quoted latency.
        const double ser = 24.0 / c.linkBytesPerCycle();
        const double expect =
            std::max(*e.netLatencyCycles, ser + 1.0);
        EXPECT_NEAR(lat, expect, 0.10 * expect + 2.0) << e.name;
    }
}

TEST(Config, ValidationCatchesBadSetups)
{
    MachineConfig c;
    c.meshX = 0;
    EXPECT_DEATH(c.validate(), "mesh");

    MachineConfig c2;
    c2.lineBytes = 12;
    EXPECT_DEATH(c2.validate(), "lineBytes");

    MachineConfig c3;
    c3.cacheBytes = 1000; // not a multiple of 16
    EXPECT_DEATH(c3.validate(), "cacheBytes");
}

TEST(Config, DerivedQuantities)
{
    MachineConfig c;
    EXPECT_EQ(c.nodes(), 32);
    EXPECT_DOUBLE_EQ(c.linkBytesPerCycle(), 45.0 / 20.0);
    EXPECT_DOUBLE_EQ(c.bisectionBytesPerCycle(), 8 * 45.0 / 20.0);
    EXPECT_EQ(c.wordsPerLine(), 2u);
    EXPECT_GT(c.averageHops(), 3.0);
    EXPECT_LT(c.averageHops(), 5.0);
}

TEST(Config, IdealModeOverridesLatency)
{
    MachineConfig c;
    c.idealNet = true;
    c.idealNetLatencyCycles = 123.0;
    EXPECT_DOUBLE_EQ(c.onewayLatencyCycles(24, 5), 123.0);
}

} // namespace
} // namespace alewife
