/**
 * @file
 * Tests for the invariant-audit subsystem: clean audited runs across
 * every shared-memory app, named-invariant detection of deliberately
 * injected protocol bugs, schedule-perturbation determinism, and the
 * EventQueue tie-break contract.
 */

#include <gtest/gtest.h>

#include "apps/stream.hh"
#include "apps/stress.hh"
#include "check/auditor.hh"
#include "core/runner.hh"
#include "sim/event_queue.hh"

namespace alewife {
namespace {

using check::InvariantAuditor;
using check::PerturbConfig;
using core::Mechanism;
using core::RunSpec;

apps::Stress::Params
tinyStress(std::uint64_t seed = 1)
{
    apps::Stress::Params p;
    p.counters = 4;
    p.opsPerNode = 80;
    p.nprocs = 16;
    p.seed = seed;
    return p;
}

RunSpec
tinySpec(Mechanism mech = Mechanism::SharedMemory)
{
    RunSpec spec;
    spec.machine.meshX = 4;
    spec.machine.meshY = 4;
    spec.mechanism = mech;
    return spec;
}

TEST(Auditor, CleanOnStressRun)
{
    apps::Stress app(tinyStress());
    InvariantAuditor auditor(
        {.abortOnViolation = false, .maxViolations = 8});
    const auto r = core::runApp(app, tinySpec(), true, &auditor);
    EXPECT_TRUE(r.verified);
    for (const auto &v : auditor.violations())
        ADD_FAILURE() << v.invariant << ": " << v.detail;
    EXPECT_TRUE(auditor.clean());
    // The workload really exercised the protocol.
    EXPECT_GT(auditor.messagesSeen(coh::MsgType::Inv), 0u);
    EXPECT_GT(auditor.messagesSeen(coh::MsgType::GetX), 0u);
}

TEST(Auditor, CleanOnStressRunWithPrefetch)
{
    apps::Stress app(tinyStress(7));
    InvariantAuditor auditor(
        {.abortOnViolation = false, .maxViolations = 8});
    const auto r = core::runApp(
        app, tinySpec(Mechanism::SharedMemoryPrefetch), true, &auditor);
    EXPECT_TRUE(r.verified);
    for (const auto &v : auditor.violations())
        ADD_FAILURE() << v.invariant << ": " << v.detail;
    EXPECT_TRUE(auditor.clean());
}

TEST(Auditor, CleanOnStreamViaSpecAuditFlag)
{
    // spec.audit = true attaches an internal aborting auditor; the run
    // completing at all is the assertion.
    apps::Stream::Params sp;
    sp.valuesPerIter = 16;
    sp.iters = 2;
    sp.nprocs = 16;
    apps::Stream app(sp);
    RunSpec spec = tinySpec();
    spec.audit = true;
    const auto r = core::runApp(app, spec);
    EXPECT_TRUE(r.verified);
}

TEST(Auditor, CleanUnderPerturbation)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        apps::Stress app(tinyStress());
        InvariantAuditor auditor(
            {.abortOnViolation = false, .maxViolations = 8});
        RunSpec spec = tinySpec();
        spec.perturb.seed = seed;
        spec.perturb.tieBreak = true;
        spec.perturb.hopJitterFrac = 0.3;
        const auto r = core::runApp(app, spec, true, &auditor);
        EXPECT_TRUE(r.verified) << "seed " << seed;
        for (const auto &v : auditor.violations())
            ADD_FAILURE() << "seed " << seed << ": " << v.invariant
                          << ": " << v.detail;
    }
}

TEST(Auditor, PerturbedRunsAreSeedDeterministic)
{
    auto once = [](std::uint64_t seed) {
        apps::Stress app(tinyStress());
        RunSpec spec = tinySpec();
        spec.perturb.seed = seed;
        spec.perturb.tieBreak = true;
        spec.perturb.hopJitterFrac = 0.2;
        return core::runApp(app, spec);
    };
    const auto a = once(42);
    const auto b = once(42);
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.checksum, b.checksum);
    // A different seed should (for this workload) change the schedule.
    const auto c = once(43);
    EXPECT_NE(a.simEvents + a.runtimeCycles,
              c.simEvents + c.runtimeCycles);
}

TEST(Auditor, CatchesDroppedInvAck)
{
    // A node swallowing one InvAck breaks inv-ack conservation; the
    // aborting auditor must panic naming the invariant.
    auto run = []() {
        apps::Stress app(tinyStress());
        Machine m(tinySpec().machine, proc::SyncStyle::SharedMemory,
                  msg::RecvMode::Polling);
        InvariantAuditor auditor; // aborting mode
        auditor.attach(m);
        for (int i = 0; i < m.nodes(); ++i) {
            coh::CoherenceController::DebugFaults f;
            f.dropInvAck = true;
            m.cohAt(i).debugInjectFaults(f);
        }
        app.setup(m, Mechanism::SharedMemory);
        m.run([&app](proc::Ctx &ctx) { return app.program(ctx); });
    };
    EXPECT_DEATH(run(), "inv-ack-conservation");
}

TEST(Auditor, CatchesSkippedInvalidate)
{
    // A cache acking an Inv without invalidating leaves a stale copy;
    // directory/cache agreement must flag it at quiescence.
    apps::Stress app(tinyStress());
    Machine m(tinySpec().machine, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Polling);
    InvariantAuditor auditor(
        {.abortOnViolation = false, .maxViolations = 4});
    auditor.attach(m);
    for (int i = 0; i < m.nodes(); ++i) {
        coh::CoherenceController::DebugFaults f;
        f.skipInvalidate = true;
        m.cohAt(i).debugInjectFaults(f);
    }
    app.setup(m, Mechanism::SharedMemory);
    m.run([&app](proc::Ctx &ctx) { return app.program(ctx); });
    auditor.finalize();
    ASSERT_FALSE(auditor.clean());
    bool named = false;
    for (const auto &v : auditor.violations()) {
        if (v.invariant == "dir-cache-agreement"
            || v.invariant == "write-serialization"
            || v.invariant == "modified-single-owner")
            named = true;
    }
    EXPECT_TRUE(named) << "first: " << auditor.violations()[0].invariant
                       << ": " << auditor.violations()[0].detail;
}

TEST(EventQueue, TieBreakKeepsImmediateEventFifoContract)
{
    // The documented contract: an event scheduled for `now` runs after
    // every already-queued same-tick event, and same-tick immediate
    // events run in schedule order. Tie-breaking must preserve both.
    EventQueue eq;
    eq.setTieBreak(123);
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.schedule(eq.now(), [&] { order.push_back(2); });
        eq.schedule(eq.now(), [&] { order.push_back(3); });
    });
    eq.schedule(5, [&] { order.push_back(1); });
    while (eq.processOne()) {
    }
    // 0 and 1 were both scheduled for tick 5 before execution began --
    // tie-break may reorder them -- but both immediates (2, 3) must run
    // after them and in FIFO order.
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(order[3], 3);
}

TEST(EventQueue, TieBreakSeedsAreDeterministic)
{
    auto run = [](std::uint64_t seed) {
        EventQueue eq;
        eq.setTieBreak(seed);
        std::vector<int> order;
        for (int i = 0; i < 16; ++i)
            eq.schedule(10, [&order, i] { order.push_back(i); });
        while (eq.processOne()) {
        }
        return order;
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10)); // 16! orderings; collision ~impossible
}

} // namespace
} // namespace alewife
