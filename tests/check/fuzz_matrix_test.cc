/**
 * @file
 * Schedule-perturbation fuzz matrix (ctest labels: fuzz, slow).
 *
 * Runs the stress workload across a seed x perturbation-mode matrix
 * with a collecting InvariantAuditor attached and requires every run
 * to verify numerically and audit clean. A failure message names the
 * violated invariant plus the (seed, mode) pair, which replays exactly
 * via tests or `./build/bench/check_fuzz --seed-base <seed>`.
 */

#include <gtest/gtest.h>

#include "apps/stress.hh"
#include "check/auditor.hh"
#include "core/runner.hh"

namespace alewife {
namespace {

using check::InvariantAuditor;
using core::Mechanism;
using core::RunSpec;

struct Mode
{
    const char *name;
    bool tieBreak;
    double jitter;
};

constexpr Mode kModes[] = {
    {"none", false, 0.0},
    {"tiebreak", true, 0.0},
    {"jitter", false, 0.25},
    {"both", true, 0.25},
};

TEST(FuzzMatrix, StressAuditsCleanAcrossSeedsAndModes)
{
    constexpr int kSeeds = 8;
    for (int s = 0; s < kSeeds; ++s) {
        const std::uint64_t seed = 1000 + 37 * s;
        for (const Mode &mode : kModes) {
            apps::Stress::Params p;
            p.counters = 4;
            p.opsPerNode = 100;
            p.nprocs = 16;
            p.seed = seed;
            apps::Stress app(p);

            RunSpec spec;
            spec.machine.meshX = 4;
            spec.machine.meshY = 4;
            spec.perturb.seed = seed;
            spec.perturb.tieBreak = mode.tieBreak;
            spec.perturb.hopJitterFrac = mode.jitter;

            InvariantAuditor auditor(
                {.abortOnViolation = false, .maxViolations = 4});
            const auto r = core::runApp(app, spec, false, &auditor);
            EXPECT_TRUE(r.verified)
                << "checksum mismatch: seed=" << seed
                << " mode=" << mode.name;
            for (const auto &v : auditor.violations()) {
                ADD_FAILURE()
                    << v.invariant << " at tick " << v.tick
                    << " (seed=" << seed << " mode=" << mode.name
                    << "): " << v.detail;
            }
        }
    }
}

TEST(FuzzMatrix, PerturbedSchedulesStillConvergeUnderPrefetch)
{
    for (int s = 0; s < 4; ++s) {
        const std::uint64_t seed = 7000 + 101 * s;
        apps::Stress::Params p;
        p.counters = 4;
        p.opsPerNode = 100;
        p.nprocs = 16;
        p.seed = seed;
        apps::Stress app(p);

        RunSpec spec;
        spec.machine.meshX = 4;
        spec.machine.meshY = 4;
        spec.mechanism = Mechanism::SharedMemoryPrefetch;
        spec.perturb.seed = seed;
        spec.perturb.tieBreak = true;
        spec.perturb.hopJitterFrac = 0.25;

        InvariantAuditor auditor(
            {.abortOnViolation = false, .maxViolations = 4});
        const auto r = core::runApp(app, spec, false, &auditor);
        EXPECT_TRUE(r.verified) << "seed=" << seed;
        for (const auto &v : auditor.violations())
            ADD_FAILURE() << v.invariant << " (seed=" << seed
                          << "): " << v.detail;
    }
}

} // namespace
} // namespace alewife
