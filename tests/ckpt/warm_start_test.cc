/**
 * @file
 * Warm-start sweeps: restore-safe delta whitelist, bit-equality of an
 * early-fork warm start against a cold start under the variant config,
 * and verified completion of mid-run forks.
 */

#include <gtest/gtest.h>

#include "apps/stream.hh"
#include "ckpt/restore.hh"
#include "core/runner.hh"
#include "exp/warm_start.hh"

namespace alewife::ckpt {
namespace {

using core::Mechanism;

core::AppFactory
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    return apps::Stream::factory(p);
}

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.volume.total(), b.volume.total());
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected);
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
    EXPECT_TRUE(b.verified);
}

TEST(RestoreSafe, AcceptsEveryWhitelistedKnob)
{
    const MachineConfig base;
    auto ok = [&](auto mutate) {
        MachineConfig v = base;
        mutate(v);
        std::string why;
        const bool safe = restoreSafeDelta(base, v, &why);
        EXPECT_TRUE(safe) << why;
    };
    ok([](MachineConfig &v) { v.linkMBps *= 2; });
    ok([](MachineConfig &v) { v.hopNs *= 3; });
    ok([](MachineConfig &v) { v.netFixedNs += 100; });
    ok([](MachineConfig &v) { v.idealNetLatencyCycles = 400; });
    ok([](MachineConfig &v) { v.contextSwitchCycles += 5; });
    ok([](MachineConfig &v) { v.niRetryCycles += 7; });
    ok([](MachineConfig &v) { v.name = "renamed"; });
}

TEST(RestoreSafe, RejectsStructuralKnobs)
{
    const MachineConfig base;
    auto bad = [&](auto mutate) {
        MachineConfig v = base;
        mutate(v);
        std::string why;
        EXPECT_FALSE(restoreSafeDelta(base, v, &why));
        EXPECT_FALSE(why.empty());
    };
    bad([](MachineConfig &v) { v.meshX *= 2; });
    bad([](MachineConfig &v) { v.cacheBytes *= 2; });
    bad([](MachineConfig &v) { v.procMhz = 40; });
    bad([](MachineConfig &v) { v.idealNet = !v.idealNet; });
}

TEST(WarmStart, EarlyForkMatchesColdStartExactly)
{
    // Fork before any network activity: the snapshot carries no state
    // the changed knob could have influenced, so the warm continuation
    // must be bit-identical to a cold run under the variant config.
    exp::WarmStartSweep sweep;
    sweep.base.mechanism = Mechanism::SharedMemory;
    sweep.forkEvents = 2;
    MachineConfig slow = sweep.base.machine;
    slow.linkMBps /= 2;
    MachineConfig fast = sweep.base.machine;
    fast.linkMBps *= 2;
    sweep.variants = {slow, fast};

    const auto results = exp::runWarmStartSweep(tinyStream(), sweep);
    ASSERT_EQ(results.size(), 3u);

    core::RunSpec coldBase = sweep.base;
    expectIdentical(core::runApp(tinyStream(), coldBase), results[0]);

    core::RunSpec coldSlow = sweep.base;
    coldSlow.machine = slow;
    expectIdentical(core::runApp(tinyStream(), coldSlow), results[1]);

    core::RunSpec coldFast = sweep.base;
    coldFast.machine = fast;
    expectIdentical(core::runApp(tinyStream(), coldFast), results[2]);
}

TEST(WarmStart, MidRunForkCompletesVerified)
{
    // A mid-run fork answers the paper's sensitivity question asked
    // mid-flight; the result legitimately differs from any cold run,
    // but must still complete and verify its numeric checksum.
    core::RunSpec probe;
    probe.mechanism = Mechanism::SharedMemory;
    const auto gold = core::runApp(tinyStream(), probe);

    exp::WarmStartSweep sweep;
    sweep.base.mechanism = Mechanism::SharedMemory;
    sweep.forkEvents = gold.simEvents / 2;
    MachineConfig v = sweep.base.machine;
    v.hopNs *= 4;
    sweep.variants = {v};

    const auto results = exp::runWarmStartSweep(tinyStream(), sweep);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[1].verified);
    // The base leg is untouched by the fork capture.
    expectIdentical(gold, results[0]);
}

TEST(WarmStartDeath, RejectsUnsafeVariant)
{
    exp::WarmStartSweep sweep;
    sweep.forkEvents = 2;
    MachineConfig v = sweep.base.machine;
    v.meshX *= 2;
    sweep.variants = {v};
    EXPECT_DEATH(exp::runWarmStartSweep(tinyStream(), sweep),
                 "restore-safe");
}

TEST(WarmStartDeath, RejectsForkPastEndOfRun)
{
    exp::WarmStartSweep sweep;
    sweep.forkEvents = ~0ULL;
    MachineConfig v = sweep.base.machine;
    v.linkMBps *= 2;
    sweep.variants = {v};
    EXPECT_DEATH(exp::runWarmStartSweep(tinyStream(), sweep),
                 "fork point");
}

} // namespace
} // namespace alewife::ckpt
