/**
 * @file
 * Resume-equals-straight-run goldens: a run saved mid-flight and
 * resumed in a fresh process-worth of state must finish bit-identical
 * to the uninterrupted run — across workloads, mechanisms, schedule
 * perturbation (RNG streams), and the periodic crash-tolerance path.
 * All golden runs execute with the invariant auditor attached.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/em3d.hh"
#include "apps/iccg.hh"
#include "apps/stream.hh"
#include "ckpt/driver.hh"
#include "core/runner.hh"

namespace alewife::ckpt {
namespace {

using core::Mechanism;

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

core::AppFactory
factoryFor(const std::string &app)
{
    if (app == "stream") {
        apps::Stream::Params p;
        p.valuesPerIter = 16;
        p.iters = 2;
        return apps::Stream::factory(p);
    }
    if (app == "em3d") {
        apps::Em3d::Params p;
        p.graph.nodesPerSide = 256;
        p.graph.degree = 4;
        p.iters = 2;
        return apps::Em3d::factory(p);
    }
    apps::Iccg::Params p;
    p.matrix.rows = 400;
    return apps::Iccg::factory(p);
}

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.volume.total(), b.volume.total());
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected);
    EXPECT_EQ(a.counters.packetsDelivered, b.counters.packetsDelivered);
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
    EXPECT_EQ(a.counters.cacheMisses, b.counters.cacheMisses);
    for (std::size_t i = 0; i < a.breakdown.ticks.size(); ++i)
        EXPECT_EQ(a.breakdown.ticks[i], b.breakdown.ticks[i]);
    EXPECT_TRUE(b.verified);
}

struct GoldenCase
{
    const char *app;
    Mechanism mech;
};

class ResumeGolden : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(ResumeGolden, ResumeEqualsStraightRun)
{
    const GoldenCase c = GetParam();
    const auto factory = factoryFor(c.app);
    core::RunSpec spec;
    spec.mechanism = c.mech;
    spec.audit = true; // InvariantAuditor on for every golden run

    const auto gold = core::runApp(factory, spec);
    ASSERT_GT(gold.simEvents, 100u);

    // Fork midway; capturing must not perturb the run itself.
    ForkPointDriver fork(gold.simEvents / 2);
    const auto forked = core::runApp(factory, spec, true, nullptr, &fork);
    ASSERT_TRUE(fork.snapshot().has_value());
    expectIdentical(gold, forked);

    // Resume from the file in a fresh machine: bit-identical finish.
    const std::string path = tmpPath(std::string("alewife-ckpt-golden-")
                                     + c.app + "-"
                                     + core::mechanismShortName(c.mech)
                                     + ".json");
    saveFile(*fork.snapshot(), path);
    CheckpointDriver resumeDriver({path, 0.0, /*resume=*/true,
                                   /*deleteOnSuccess=*/true});
    const auto resumed =
        core::runApp(factory, spec, true, nullptr, &resumeDriver);
    EXPECT_TRUE(resumeDriver.resumed());
    expectIdentical(gold, resumed);
    // Successful completion removes the job-done marker.
    EXPECT_FALSE(std::filesystem::exists(path));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ResumeGolden,
    ::testing::Values(GoldenCase{"stream", Mechanism::SharedMemory},
                      GoldenCase{"stream", Mechanism::MpInterrupt},
                      GoldenCase{"em3d", Mechanism::SharedMemory},
                      GoldenCase{"em3d", Mechanism::MpInterrupt},
                      GoldenCase{"iccg", Mechanism::SharedMemory},
                      GoldenCase{"iccg", Mechanism::MpInterrupt}),
    [](const auto &info) {
        return std::string(info.param.app) + "_"
               + (info.param.mech == Mechanism::SharedMemory ? "SM"
                                                             : "MPI");
    });

TEST(CrashResume, PeriodicSnapshotResumesIdentically)
{
    const auto factory = factoryFor("stream");
    core::RunSpec spec;
    spec.audit = true;
    const std::string path = tmpPath("alewife-ckpt-crash.json");
    std::filesystem::remove(path);

    // First run saves periodically and keeps the last snapshot around,
    // standing in for a worker killed after its final save.
    CheckpointDriver first({path, /*intervalCycles=*/500.0,
                            /*resume=*/false, /*deleteOnSuccess=*/false});
    const auto a = core::runApp(factory, spec, true, nullptr, &first);
    EXPECT_GT(first.snapshotsSaved(), 0u);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Second run resumes from that mid-run snapshot and must finish
    // exactly like the uninterrupted run.
    CheckpointDriver second({path, 500.0, true, true});
    const auto b = core::runApp(factory, spec, true, nullptr, &second);
    EXPECT_TRUE(second.resumed());
    expectIdentical(a, b);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(CrashResume, ConfigMismatchFallsBackToColdStart)
{
    const auto factory = factoryFor("stream");
    const std::string path = tmpPath("alewife-ckpt-mismatch.json");

    core::RunSpec spec;
    ForkPointDriver fork(200);
    core::runApp(factory, spec, true, nullptr, &fork);
    ASSERT_TRUE(fork.snapshot().has_value());
    saveFile(*fork.snapshot(), path);

    // A different machine must ignore the snapshot (warn + cold
    // start), not resume into a wrong configuration.
    core::RunSpec other;
    other.machine.cacheBytes *= 2;
    CheckpointDriver driver({path, 0.0, true, true});
    const auto r = core::runApp(factory, other, true, nullptr, &driver);
    EXPECT_FALSE(driver.resumed());
    EXPECT_TRUE(r.verified);
    std::filesystem::remove(path);
}

TEST(CrashResume, UnreadableSnapshotFallsBackToColdStart)
{
    const auto factory = factoryFor("stream");
    const std::string path = tmpPath("alewife-ckpt-garbage.json");
    {
        std::ofstream out(path);
        out << "{ not a snapshot";
    }
    core::RunSpec spec;
    CheckpointDriver driver({path, 0.0, true, true});
    const auto r = core::runApp(factory, spec, true, nullptr, &driver);
    EXPECT_FALSE(driver.resumed());
    EXPECT_TRUE(r.verified);
    std::filesystem::remove(path);
}

// --------------------------------------------------------------------
// RNG stream capture (satellite): the kernel tie-break stream and the
// mesh jitter stream must restore so the *subsequent* sequence is
// bit-identical — pinned end-to-end by resuming perturbed runs, whose
// schedules consume both streams continuously.
// --------------------------------------------------------------------

class ResumePerturbed : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ResumePerturbed, PerturbedRunResumesBitIdentical)
{
    const auto factory = factoryFor("stream");
    core::RunSpec spec;
    spec.audit = true;
    spec.perturb.seed = GetParam();
    spec.perturb.tieBreak = true;
    spec.perturb.hopJitterFrac = 0.2;

    const auto gold = core::runApp(factory, spec);
    ASSERT_GT(gold.simEvents, 100u);

    ForkPointDriver fork(gold.simEvents / 2);
    const auto forked = core::runApp(factory, spec, true, nullptr, &fork);
    ASSERT_TRUE(fork.snapshot().has_value());
    expectIdentical(gold, forked);

    const std::string path =
        tmpPath("alewife-ckpt-perturb-"
                + std::to_string(GetParam()) + ".json");
    saveFile(*fork.snapshot(), path);
    CheckpointDriver resumeDriver({path, 0.0, true, true});
    const auto resumed =
        core::runApp(factory, spec, true, nullptr, &resumeDriver);
    EXPECT_TRUE(resumeDriver.resumed());
    expectIdentical(gold, resumed);
}

INSTANTIATE_TEST_SUITE_P(PerturbSeeds, ResumePerturbed,
                         ::testing::Values(1u, 7u, 1234567u));

TEST(ResumeRng, DifferentSeedsActuallyDiverge)
{
    // Sanity for the suite above: the perturbed schedules depend on the
    // seed, so stream restoration is load-bearing, not vacuous.
    const auto factory = factoryFor("stream");
    core::RunSpec a;
    a.perturb.seed = 1;
    a.perturb.tieBreak = true;
    a.perturb.hopJitterFrac = 0.2;
    core::RunSpec b = a;
    b.perturb.seed = 2;
    const auto ra = core::runApp(factory, a);
    const auto rb = core::runApp(factory, b);
    EXPECT_NE(ra.runtimeCycles, rb.runtimeCycles);
}

} // namespace
} // namespace alewife::ckpt
