/**
 * @file
 * Snapshot format tests: hex codec edge values, file round-trip bit
 * identity, schema/version rejection, and per-section digests.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/stream.hh"
#include "ckpt/driver.hh"
#include "ckpt/snapshot.hh"
#include "core/runner.hh"
#include "exp/result_cache.hh"
#include "exp/serialize.hh"

namespace alewife::ckpt {
namespace {

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

core::AppFactory
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    return apps::Stream::factory(p);
}

/** Capture a snapshot mid-run of the tiny stream workload. */
Snapshot
captureMidStream(std::uint64_t at = 400)
{
    ForkPointDriver fork(at);
    core::RunSpec spec;
    core::runApp(tinyStream(), spec, true, nullptr, &fork);
    EXPECT_TRUE(fork.snapshot().has_value());
    return *fork.snapshot();
}

TEST(HexCodec, RoundTripsEdgeValues)
{
    const std::uint64_t values[] = {
        0,
        1,
        (1ULL << 53) + 1, // would round as a JSON double
        0x00ffee00ddcc0011ULL,
        ~0ULL,
    };
    for (std::uint64_t v : values)
        EXPECT_EQ(parseHexU64(hexU64(v)), v);
}

TEST(HexCodec, IsFixedWidthLowercase)
{
    EXPECT_EQ(hexU64(0), "0x0000000000000000");
    EXPECT_EQ(hexU64(0xABCDULL), "0x000000000000abcd");
    EXPECT_EQ(hexU64(~0ULL), "0xffffffffffffffff");
}

TEST(Snapshot, AccessorsMatchCapturePoint)
{
    const Snapshot s = captureMidStream(400);
    EXPECT_EQ(s.eventsExecuted(), 400u);
    EXPECT_GT(s.now(), Tick{0});
    EXPECT_EQ(s.configKey(), MachineConfig{}.canonicalKey());
}

TEST(Snapshot, DigestsCoverEverySectionAndMatch)
{
    const Snapshot s = captureMidStream();
    const char *sections[] = {"config", "kernel", "events",  "mesh",
                              "memory", "caches", "pfb",     "coh",
                              "procs",  "sync",   "ni",      "cross",
                              "counters"};
    for (const char *sec : sections) {
        const exp::Json *j = s.doc.find(sec);
        ASSERT_NE(j, nullptr) << "missing section " << sec;
        EXPECT_EQ(s.sectionDigest(sec), exp::fnv1a64(j->dump()))
            << "digest mismatch for section " << sec;
    }
}

TEST(SnapshotFile, SaveLoadIsBitIdentical)
{
    const Snapshot s = captureMidStream();
    const std::string path = tmpPath("alewife-ckpt-roundtrip.json");
    saveFile(s, path);
    std::string err;
    const auto back = loadFile(path, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->doc.dump(), s.doc.dump());
    std::filesystem::remove(path);
}

TEST(SnapshotFile, MissingFileReportsError)
{
    std::string err;
    EXPECT_FALSE(loadFile(tmpPath("alewife-ckpt-nonexistent.json"), &err)
                     .has_value());
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotFile, RejectsWrongSchemaAndVersion)
{
    const Snapshot s = captureMidStream();
    const std::string path = tmpPath("alewife-ckpt-doctored.json");

    Snapshot wrongSchema = s;
    wrongSchema.doc.set("schema", "alewife-results");
    saveFile(wrongSchema, path);
    std::string err;
    EXPECT_FALSE(loadFile(path, &err).has_value());
    EXPECT_NE(err.find("schema"), std::string::npos);

    Snapshot wrongVersion = s;
    wrongVersion.doc.set("version", kCkptSchemaVersion + 1);
    saveFile(wrongVersion, path);
    EXPECT_FALSE(loadFile(path, &err).has_value());

    std::filesystem::remove(path);
}

TEST(SnapshotFile, RejectsTruncatedDocument)
{
    const Snapshot s = captureMidStream();
    const std::string path = tmpPath("alewife-ckpt-truncated.json");
    {
        const std::string full = s.doc.dump(1);
        std::ofstream out(path);
        out << full.substr(0, full.size() / 2);
    }
    std::string err;
    EXPECT_FALSE(loadFile(path, &err).has_value());
    EXPECT_FALSE(err.empty());
    std::filesystem::remove(path);
}

TEST(ResultCacheKey, IncludesBothSchemaVersions)
{
    // Satellite of the checkpoint work: cached sweep results must be
    // invalidated when either serialization format changes, so both
    // versions are spelled into every cache key.
    core::RunSpec spec;
    const std::string key = exp::ResultCache::key(spec, "stream/t=1");
    ASSERT_FALSE(key.empty());
    const std::string want = "rs" + std::to_string(exp::kResultSchemaVersion)
                             + ".cs" + std::to_string(kCkptSchemaVersion)
                             + "|";
    EXPECT_EQ(key.rfind(want, 0), 0u)
        << "key does not start with schema versions: " << key;
}

} // namespace
} // namespace alewife::ckpt
