/**
 * @file
 * Capture semantics: determinism, self-verification, and the
 * unserializable-event guard (every pending event must carry a typed
 * EventMeta; capture fails naming the offending schedule site).
 */

#include <gtest/gtest.h>

#include <functional>

#include "apps/stream.hh"
#include "ckpt/ckpt.hh"
#include "core/runner.hh"

namespace alewife::ckpt {
namespace {

core::AppFactory
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    return apps::Stream::factory(p);
}

/** Runs a workload, invoking a probe on the paused machine mid-run. */
struct MidRunProbe : core::RunDriver
{
    std::uint64_t at;
    std::function<void(Machine &)> probe;

    MidRunProbe(std::uint64_t at_, std::function<void(Machine &)> p)
        : at(at_), probe(std::move(p))
    {
    }

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        m.start(f);
        if (m.stepUntilEvents(at))
            probe(m);
        while (m.stepOne()) {
        }
        return m.finishRun();
    }
};

void
runWithProbe(std::uint64_t at, std::function<void(Machine &)> probe)
{
    MidRunProbe driver(at, std::move(probe));
    core::RunSpec spec;
    core::runApp(tinyStream(), spec, true, nullptr, &driver);
}

TEST(Capture, SucceedsMidRunAndSelfVerifies)
{
    bool probed = false;
    runWithProbe(400, [&](Machine &m) {
        probed = true;
        const CaptureResult r = capture(m);
        ASSERT_TRUE(r.ok()) << r.error;
        // The machine was not stepped since the capture, so verify()
        // must find zero divergent sections.
        EXPECT_TRUE(verify(m, *r.snap).empty());
    });
    EXPECT_TRUE(probed);
}

TEST(Capture, IsDeterministic)
{
    runWithProbe(400, [&](Machine &m) {
        const CaptureResult a = capture(m);
        const CaptureResult b = capture(m);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_EQ(a.snap->doc.dump(), b.snap->doc.dump());
    });
}

TEST(Capture, VerifyFlagsASteppedMachine)
{
    runWithProbe(400, [&](Machine &m) {
        const CaptureResult r = capture(m);
        ASSERT_TRUE(r.ok());
        m.stepOne();
        EXPECT_FALSE(verify(m, *r.snap).empty());
    });
}

TEST(Capture, FailsOnUntaggedEventNamingTheSite)
{
    runWithProbe(400, [&](Machine &m) {
        // Raw schedule with no EventMeta: legal for the simulator,
        // illegal to checkpoint over.
        m.eq().schedule(m.eq().now() + 100, [] {});
        const CaptureResult r = capture(m);
        EXPECT_FALSE(r.ok());
        EXPECT_NE(r.error.find("untagged"), std::string::npos)
            << r.error;
        // The error names this file as the schedule site.
        EXPECT_NE(r.error.find("capture_test.cc"), std::string::npos)
            << r.error;
    });
}

TEST(Capture, KernelSectionCarriesRngStreams)
{
    runWithProbe(400, [&](Machine &m) {
        const CaptureResult r = capture(m);
        ASSERT_TRUE(r.ok());
        const exp::Json *kernel = r.snap->doc.find("kernel");
        ASSERT_NE(kernel, nullptr);
        ASSERT_NE(kernel->find("rng"), nullptr);
        const exp::Json *mesh = r.snap->doc.find("mesh");
        ASSERT_NE(mesh, nullptr);
        ASSERT_NE(mesh->find("jitterRng"), nullptr);
    });
}

} // namespace
} // namespace alewife::ckpt
