/**
 * @file
 * Checkpoint/restore coverage for the graph workload family: the
 * resume-equals-straight-run golden and the crash-tolerance path on
 * irregular point-to-point traffic, the warm-start early-fork
 * equivalence, and the untagged-schedule-site diagnostic raised from
 * inside a graph run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>

#include "apps/graph/catalog.hh"
#include "ckpt/ckpt.hh"
#include "ckpt/driver.hh"
#include "core/runner.hh"
#include "exp/warm_start.hh"

namespace alewife::ckpt {
namespace {

using core::Mechanism;

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Small instance on the default 32-node machine. */
core::AppFactory
graphFactory(const std::string &name)
{
    apps::graph::GraphAppParams p;
    p.graph.vertices = 400;
    p.graph.avgDegree = 5;
    p.graph.family = workload::GraphFamily::RMat;
    p.graph.seed = 11;
    p.iters = 2;
    return apps::graph::makeApp(name, p);
}

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.volume.total(), b.volume.total());
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected);
    EXPECT_EQ(a.counters.packetsDelivered, b.counters.packetsDelivered);
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
    EXPECT_EQ(a.counters.cacheMisses, b.counters.cacheMisses);
    for (std::size_t i = 0; i < a.breakdown.ticks.size(); ++i)
        EXPECT_EQ(a.breakdown.ticks[i], b.breakdown.ticks[i]);
    EXPECT_TRUE(b.verified);
}

struct GoldenCase
{
    const char *app;
    Mechanism mech;
};

class GraphResumeGolden : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GraphResumeGolden, ResumeEqualsStraightRun)
{
    const GoldenCase c = GetParam();
    const auto factory = graphFactory(c.app);
    core::RunSpec spec;
    spec.mechanism = c.mech;
    spec.audit = true; // InvariantAuditor on for every golden run

    const auto gold = core::runApp(factory, spec);
    ASSERT_GT(gold.simEvents, 100u);

    ForkPointDriver fork(gold.simEvents / 2);
    const auto forked = core::runApp(factory, spec, true, nullptr, &fork);
    ASSERT_TRUE(fork.snapshot().has_value());
    expectIdentical(gold, forked);

    const std::string path =
        tmpPath(std::string("alewife-ckpt-graph-") + c.app + "-"
                + std::to_string(static_cast<int>(c.mech)) + ".json");
    saveFile(*fork.snapshot(), path);
    CheckpointDriver resumeDriver({path, 0.0, /*resume=*/true,
                                   /*deleteOnSuccess=*/true});
    const auto resumed =
        core::runApp(factory, spec, true, nullptr, &resumeDriver);
    EXPECT_TRUE(resumeDriver.resumed());
    expectIdentical(gold, resumed);
    EXPECT_FALSE(std::filesystem::exists(path));
}

INSTANTIATE_TEST_SUITE_P(
    GraphApps, GraphResumeGolden,
    ::testing::Values(GoldenCase{"bfs", Mechanism::SharedMemory},
                      GoldenCase{"bfs", Mechanism::MpInterrupt},
                      GoldenCase{"pagerank-push", Mechanism::MpPolling},
                      GoldenCase{"sssp", Mechanism::BulkTransfer}),
    [](const auto &info) {
        std::string app = info.param.app;
        for (char &ch : app)
            if (ch == '-')
                ch = '_';
        switch (info.param.mech) {
          case Mechanism::SharedMemory: return app + "_SM";
          case Mechanism::MpInterrupt: return app + "_MPI";
          case Mechanism::MpPolling: return app + "_MPP";
          default: return app + "_BULK";
        }
    });

TEST(GraphCrashResume, PeriodicSnapshotResumesIdentically)
{
    const auto factory = graphFactory("sssp");
    core::RunSpec spec;
    spec.mechanism = Mechanism::MpPolling;
    spec.audit = true;
    const std::string path = tmpPath("alewife-ckpt-graph-crash.json");
    std::filesystem::remove(path);

    CheckpointDriver first({path, /*intervalCycles=*/2000.0,
                            /*resume=*/false,
                            /*deleteOnSuccess=*/false});
    const auto a = core::runApp(factory, spec, true, nullptr, &first);
    EXPECT_GT(first.snapshotsSaved(), 0u);
    ASSERT_TRUE(std::filesystem::exists(path));

    CheckpointDriver second({path, 2000.0, true, true});
    const auto b = core::runApp(factory, spec, true, nullptr, &second);
    EXPECT_TRUE(second.resumed());
    expectIdentical(a, b);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(GraphWarmStart, EarlyForkMatchesColdStartExactly)
{
    // Forked before any network activity, each warm-started variant
    // must be bit-identical to a cold run under the variant config.
    const auto factory = graphFactory("bfs");
    exp::WarmStartSweep sweep;
    sweep.base.mechanism = Mechanism::MpInterrupt;
    sweep.forkEvents = 2;
    MachineConfig slow = sweep.base.machine;
    slow.linkMBps /= 2;
    MachineConfig lat = sweep.base.machine;
    lat.hopNs *= 4;
    sweep.variants = {slow, lat};

    const auto results = exp::runWarmStartSweep(factory, sweep);
    ASSERT_EQ(results.size(), 3u);

    expectIdentical(core::runApp(factory, sweep.base), results[0]);
    core::RunSpec coldSlow = sweep.base;
    coldSlow.machine = slow;
    expectIdentical(core::runApp(factory, coldSlow), results[1]);
    core::RunSpec coldLat = sweep.base;
    coldLat.machine = lat;
    expectIdentical(core::runApp(factory, coldLat), results[2]);
}

/** Runs a workload, invoking a probe on the paused machine mid-run. */
struct MidRunProbe : core::RunDriver
{
    std::uint64_t at;
    std::function<void(Machine &)> probe;

    MidRunProbe(std::uint64_t at_, std::function<void(Machine &)> p)
        : at(at_), probe(std::move(p))
    {
    }

    Tick
    drive(Machine &m, const Machine::ProgramFactory &f) override
    {
        m.start(f);
        if (m.stepUntilEvents(at))
            probe(m);
        while (m.stepOne()) {
        }
        return m.finishRun();
    }
};

TEST(GraphCapture, FailsOnUntaggedEventNamingTheSite)
{
    // An untagged raw schedule during a graph run is legal for the
    // simulator but must make a mid-run capture fail loudly, naming
    // this file as the schedule site.
    bool probed = false;
    MidRunProbe driver(400, [&](Machine &m) {
        probed = true;
        m.eq().schedule(m.eq().now() + 100, [] {});
        const CaptureResult r = capture(m);
        EXPECT_FALSE(r.ok());
        EXPECT_NE(r.error.find("untagged"), std::string::npos)
            << r.error;
        EXPECT_NE(r.error.find("graph_ckpt_test.cc"),
                  std::string::npos)
            << r.error;
    });
    core::RunSpec spec;
    spec.mechanism = Mechanism::MpPolling;
    core::runApp(graphFactory("pagerank"), spec, true, nullptr,
                 &driver);
    EXPECT_TRUE(probed);
}

} // namespace
} // namespace alewife::ckpt
