/**
 * @file
 * Tests for the core public API: mechanism metadata, the runner, the
 * experiment sweeps, and report formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/stream.hh"
#include "core/experiments.hh"
#include "core/report.hh"

namespace alewife::core {
namespace {

apps::Stream::Params
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    p.computePerValue = 10.0;
    return p;
}

TEST(Mechanism, NamesRoundTrip)
{
    for (Mechanism m : allMechanisms()) {
        EXPECT_EQ(mechanismFromName(mechanismShortName(m)), m);
        EXPECT_EQ(mechanismFromName(mechanismName(m)), m);
    }
}

TEST(Mechanism, StyleAndModeAreConsistent)
{
    EXPECT_EQ(syncStyle(Mechanism::SharedMemory),
              proc::SyncStyle::SharedMemory);
    EXPECT_EQ(syncStyle(Mechanism::SharedMemoryPrefetch),
              proc::SyncStyle::SharedMemory);
    EXPECT_EQ(syncStyle(Mechanism::MpInterrupt),
              proc::SyncStyle::MessagePassing);
    EXPECT_EQ(recvMode(Mechanism::MpPolling), msg::RecvMode::Polling);
    EXPECT_EQ(recvMode(Mechanism::MpInterrupt),
              msg::RecvMode::Interrupt);
    EXPECT_EQ(recvMode(Mechanism::BulkTransfer),
              msg::RecvMode::Interrupt);
    EXPECT_TRUE(usesPrefetch(Mechanism::SharedMemoryPrefetch));
    EXPECT_FALSE(usesPrefetch(Mechanism::SharedMemory));
}

TEST(Runner, ProducesVerifiedResultWithStatistics)
{
    apps::Stream app(tinyStream());
    RunSpec spec;
    spec.mechanism = Mechanism::MpInterrupt;
    const RunResult r = runApp(app, spec);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.runtimeCycles, 0.0);
    EXPECT_GT(r.volume.total(), 0u);
    EXPECT_GT(r.simEvents, 0u);
    EXPECT_EQ(r.app, "stream");
    // The breakdown is a per-node average: it cannot exceed runtime.
    EXPECT_LE(r.breakdown.total(),
              cyclesToTicks(r.runtimeCycles) + kTicksPerCycle);
}

TEST(Runner, CrossTrafficSlowsTheRun)
{
    const auto factory = apps::Stream::factory(tinyStream());
    RunSpec plain;
    plain.mechanism = Mechanism::SharedMemory;
    RunSpec congested = plain;
    congested.crossTraffic.bytesPerCycle = 14.0;
    const auto a = runApp(factory, plain);
    const auto b = runApp(factory, congested);
    EXPECT_GT(b.runtimeCycles, a.runtimeCycles);
    EXPECT_TRUE(b.verified);
}

TEST(Experiments, BisectionSweepShapes)
{
    const auto factory = apps::Stream::factory(tinyStream());
    MachineConfig base;
    const auto series =
        bisectionSweep(factory, base,
                       {Mechanism::SharedMemory,
                        Mechanism::MpInterrupt},
                       {18.0, 6.0});
    ASSERT_EQ(series.size(), 2u);
    ASSERT_EQ(series[0].points.size(), 2u);
    // Less bandwidth can't make anything meaningfully faster (allow
    // ~3% timing jitter from retry scheduling).
    for (const auto &s : series) {
        EXPECT_GE(s.points[1].result.runtimeCycles,
                  s.points[0].result.runtimeCycles * 0.97);
    }
    // SM is hurt at least as much as MP.
    const double sm_growth = series[0].points[1].result.runtimeCycles
                             / series[0].points[0].result.runtimeCycles;
    const double mp_growth = series[1].points[1].result.runtimeCycles
                             / series[1].points[0].result.runtimeCycles;
    EXPECT_GE(sm_growth, mp_growth * 0.95);
}

TEST(Experiments, ClockSweepReportsLatencyAxis)
{
    const auto factory = apps::Stream::factory(tinyStream());
    MachineConfig base;
    const auto series = clockSweep(
        factory, base, {Mechanism::SharedMemory}, {14.0, 20.0});
    ASSERT_EQ(series[0].points.size(), 2u);
    // Faster clock => higher relative network latency on the x axis.
    EXPECT_LT(series[0].points[0].x, series[0].points[1].x);
}

TEST(Experiments, IdealSweepKeepsMpFlat)
{
    const auto factory = apps::Stream::factory(tinyStream());
    MachineConfig base;
    const auto series = idealLatencySweep(
        factory, base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt},
        {20.0, 200.0});
    // SM must degrade with latency...
    EXPECT_GT(series[0].points[1].result.runtimeCycles,
              series[0].points[0].result.runtimeCycles * 1.2);
    // ...while the MP reference is replicated flat, as in the paper.
    EXPECT_DOUBLE_EQ(series[1].points[0].result.runtimeCycles,
                     series[1].points[1].result.runtimeCycles);
}

TEST(Report, TablesRenderWithoutCrashing)
{
    apps::Stream app(tinyStream());
    RunSpec spec;
    spec.mechanism = Mechanism::SharedMemory;
    const RunResult r = runApp(app, spec);

    std::ostringstream os;
    printBreakdownTable(os, "t", {r});
    printVolumeTable(os, "t", {r});
    printCounters(os, r);
    printTable1(os);
    printTable2(os);
    EXPECT_NE(os.str().find("SM"), std::string::npos);
    EXPECT_NE(os.str().find("MIT Alewife"), std::string::npos);
}

TEST(Report, SeriesAlignsColumnsToMechanisms)
{
    const auto factory = apps::Stream::factory(tinyStream());
    MachineConfig base;
    const auto series = bisectionSweep(
        factory, base, {Mechanism::MpInterrupt}, {18.0});
    std::ostringstream os;
    printSeries(os, "title", "x", series);
    EXPECT_NE(os.str().find("MP-I"), std::string::npos);
    EXPECT_NE(os.str().find("18.00"), std::string::npos);
}

} // namespace
} // namespace alewife::core
