/**
 * @file
 * Tests for the global address space.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"

namespace alewife::mem {
namespace {

TEST(AddressSpace, AllocationsAreLineAlignedAndDisjoint)
{
    AddressSpace as(4, 16);
    const Addr a = as.alloc(3, HomePolicy::Fixed, 0);
    const Addr b = as.alloc(5, HomePolicy::Fixed, 1);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    // 3 words round to 4 (one line is 2 words -> 4 words = 2 lines).
    EXPECT_GE(b, a + 4 * 8);
}

TEST(AddressSpace, FixedHomePolicy)
{
    AddressSpace as(4, 16);
    const Addr a = as.alloc(8, HomePolicy::Fixed, 2);
    for (int w = 0; w < 8; ++w)
        EXPECT_EQ(as.home(a + 8 * w), 2);
}

TEST(AddressSpace, InterleavedHomePolicy)
{
    AddressSpace as(4, 16);
    const Addr a = as.alloc(16, HomePolicy::Interleaved); // 8 lines
    EXPECT_EQ(as.home(a), 0);
    EXPECT_EQ(as.home(a + 16), 1);
    EXPECT_EQ(as.home(a + 32), 2);
    EXPECT_EQ(as.home(a + 48), 3);
    EXPECT_EQ(as.home(a + 64), 0);
}

TEST(AddressSpace, BlockedHomePolicy)
{
    AddressSpace as(4, 16);
    const Addr a = as.alloc(16, HomePolicy::Blocked); // 8 lines, 2/node
    EXPECT_EQ(as.home(a), 0);
    EXPECT_EQ(as.home(a + 31), 0);
    EXPECT_EQ(as.home(a + 32), 1);
    EXPECT_EQ(as.home(a + 64), 2);
    EXPECT_EQ(as.home(a + 96), 3);
}

TEST(AddressSpace, LoadStoreRoundTrip)
{
    AddressSpace as(2, 16);
    const Addr a = as.alloc(4, HomePolicy::Fixed, 0);
    as.storeWord(a + 8, 0xdeadbeefULL);
    EXPECT_EQ(as.loadWord(a + 8), 0xdeadbeefULL);
    EXPECT_EQ(as.loadWord(a), 0u);
}

TEST(AddressSpace, DoubleRoundTrip)
{
    AddressSpace as(2, 16);
    const Addr a = as.alloc(2, HomePolicy::Fixed, 0);
    as.storeDouble(a, 3.14159);
    EXPECT_DOUBLE_EQ(as.loadDouble(a), 3.14159);
}

TEST(AddressSpace, MultipleRegionsIndependent)
{
    AddressSpace as(2, 16);
    const Addr a = as.alloc(2, HomePolicy::Fixed, 0);
    const Addr b = as.alloc(2, HomePolicy::Fixed, 1);
    as.storeWord(a, 1);
    as.storeWord(b, 2);
    EXPECT_EQ(as.loadWord(a), 1u);
    EXPECT_EQ(as.loadWord(b), 2u);
}

TEST(AddressSpace, LineBase)
{
    AddressSpace as(2, 16);
    const Addr a = as.alloc(4, HomePolicy::Fixed, 0);
    EXPECT_EQ(as.lineBase(a + 15), a);
    EXPECT_EQ(as.lineBase(a + 16), a + 16);
}

TEST(AddressSpaceDeath, UnmappedAddressPanics)
{
    AddressSpace as(2, 16);
    as.alloc(2, HomePolicy::Fixed, 0);
    EXPECT_DEATH(as.loadWord(1 << 20), "not in any");
}

TEST(AddressSpaceDeath, UnalignedAccessPanics)
{
    AddressSpace as(2, 16);
    const Addr a = as.alloc(2, HomePolicy::Fixed, 0);
    EXPECT_DEATH(as.loadWord(a + 4), "unaligned");
}

} // namespace
} // namespace alewife::mem
