/**
 * @file
 * Tests for PartitionedArray home alignment.
 */

#include <gtest/gtest.h>

#include "mem/partitioned.hh"

namespace alewife::mem {
namespace {

TEST(PartitionedArray, ElementsHomeAtTheirPartitionOwner)
{
    AddressSpace as(4, 16);
    std::vector<std::int32_t> counts = {3, 5, 2, 4}; // ragged
    auto arr = PartitionedArray::create(as, counts, "t");
    for (int p = 0; p < 4; ++p) {
        for (std::int32_t i = 0; i < counts[p]; ++i)
            EXPECT_EQ(as.home(arr.addr(p, i)), p)
                << "p=" << p << " i=" << i;
    }
}

TEST(PartitionedArray, AddressesAreDistinct)
{
    AddressSpace as(4, 16);
    std::vector<std::int32_t> counts = {4, 4, 4, 4};
    auto arr = PartitionedArray::create(as, counts, "t");
    std::set<Addr> seen;
    for (int p = 0; p < 4; ++p)
        for (std::int32_t i = 0; i < 4; ++i)
            EXPECT_TRUE(seen.insert(arr.addr(p, i)).second);
}

TEST(PartitionedArray, BackingStoreAccessible)
{
    AddressSpace as(2, 16);
    std::vector<std::int32_t> counts = {2, 3};
    auto arr = PartitionedArray::create(as, counts, "t");
    as.storeDouble(arr.addr(1, 2), 2.5);
    EXPECT_DOUBLE_EQ(as.loadDouble(arr.addr(1, 2)), 2.5);
}

TEST(PartitionedArrayDeath, OutOfRangePanics)
{
    AddressSpace as(2, 16);
    std::vector<std::int32_t> counts = {2, 3};
    auto arr = PartitionedArray::create(as, counts, "t");
    EXPECT_DEATH(arr.addr(0, 2), "out of range");
}

} // namespace
} // namespace alewife::mem
