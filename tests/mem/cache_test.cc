/**
 * @file
 * Tests for the direct-mapped cache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace alewife::mem {
namespace {

std::vector<std::uint64_t>
words(std::uint64_t a, std::uint64_t b)
{
    return {a, b};
}

TEST(Cache, FillThenReadBack)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(11, 22));
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x108));
    EXPECT_EQ(c.readWord(0x100), 11u);
    EXPECT_EQ(c.readWord(0x108), 22u);
}

TEST(Cache, AbsentLineReportsNoState)
{
    Cache c(1024, 16);
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.state(0x100).has_value());
}

TEST(Cache, WriteRequiresModified)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(1, 2));
    c.writeWord(0x108, 99);
    EXPECT_EQ(c.readWord(0x108), 99u);
}

TEST(CacheDeath, WriteToSharedPanics)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(1, 2));
    EXPECT_DEATH(c.writeWord(0x100, 5), "non-Modified");
}

TEST(Cache, ConflictEvictsDirtyVictim)
{
    Cache c(64, 16); // 4 sets
    c.fill(0x000, LineState::Modified, words(7, 8));
    // Same set: addresses 64 bytes apart.
    auto victim = c.fill(0x040, LineState::Shared, words(1, 2));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 0x000u);
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(victim->words[0], 7u);
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x040));
}

TEST(Cache, CleanVictimVanishesSilently)
{
    Cache c(64, 16);
    c.fill(0x000, LineState::Shared, words(7, 8));
    auto victim = c.fill(0x040, LineState::Shared, words(1, 2));
    EXPECT_FALSE(victim.has_value());
}

TEST(Cache, InvalidateReturnsDirtyWords)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(5, 6));
    auto w = c.invalidate(0x108);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ((*w)[1], 6u);
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, InvalidateCleanReturnsNothing)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(5, 6));
    EXPECT_FALSE(c.invalidate(0x100).has_value());
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, InvalidateAbsentIsNoop)
{
    Cache c(1024, 16);
    EXPECT_FALSE(c.invalidate(0x100).has_value());
}

TEST(Cache, DowngradeKeepsLineShared)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(5, 6));
    auto w = c.downgrade(0x100);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(c.state(0x100), LineState::Shared);
    EXPECT_EQ(c.readWord(0x100), 5u);
}

TEST(Cache, UpgradeMakesModified)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(5, 6));
    c.upgrade(0x100);
    EXPECT_EQ(c.state(0x100), LineState::Modified);
    c.writeWord(0x100, 9);
    EXPECT_EQ(c.readWord(0x100), 9u);
}

TEST(Cache, RefillSameLineOverwrites)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(5, 6));
    auto victim = c.fill(0x100, LineState::Shared, words(9, 10));
    // Same line refill never reports itself as victim.
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(c.readWord(0x100), 9u);
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(1, 2));
    c.fill(0x200, LineState::Modified, words(3, 4));
    c.flushAll();
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.contains(0x200));
}

} // namespace
} // namespace alewife::mem
