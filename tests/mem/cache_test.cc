/**
 * @file
 * Tests for the direct-mapped cache, including the machine-level
 * eviction-races-with-recall corner: a dirty victim evicted while a
 * Recall/RecallX is in flight must be answered with RecallNoData, and
 * the home's waiting transaction must still close off the writeback.
 */

#include <gtest/gtest.h>

#include "check/auditor.hh"
#include "machine/machine.hh"
#include "mem/cache.hh"

namespace alewife::mem {
namespace {

std::vector<std::uint64_t>
words(std::uint64_t a, std::uint64_t b)
{
    return {a, b};
}

TEST(Cache, FillThenReadBack)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(11, 22));
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x108));
    EXPECT_EQ(c.readWord(0x100), 11u);
    EXPECT_EQ(c.readWord(0x108), 22u);
}

TEST(Cache, AbsentLineReportsNoState)
{
    Cache c(1024, 16);
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.state(0x100).has_value());
}

TEST(Cache, WriteRequiresModified)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(1, 2));
    c.writeWord(0x108, 99);
    EXPECT_EQ(c.readWord(0x108), 99u);
}

TEST(CacheDeath, WriteToSharedPanics)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(1, 2));
    EXPECT_DEATH(c.writeWord(0x100, 5), "non-Modified");
}

TEST(Cache, ConflictEvictsDirtyVictim)
{
    Cache c(64, 16); // 4 sets
    c.fill(0x000, LineState::Modified, words(7, 8));
    // Same set: addresses 64 bytes apart.
    auto victim = c.fill(0x040, LineState::Shared, words(1, 2));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 0x000u);
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(victim->words[0], 7u);
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x040));
}

TEST(Cache, CleanVictimVanishesSilently)
{
    Cache c(64, 16);
    c.fill(0x000, LineState::Shared, words(7, 8));
    auto victim = c.fill(0x040, LineState::Shared, words(1, 2));
    EXPECT_FALSE(victim.has_value());
}

TEST(Cache, InvalidateReturnsDirtyWords)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(5, 6));
    auto w = c.invalidate(0x108);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ((*w)[1], 6u);
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, InvalidateCleanReturnsNothing)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(5, 6));
    EXPECT_FALSE(c.invalidate(0x100).has_value());
    EXPECT_FALSE(c.contains(0x100));
}

TEST(Cache, InvalidateAbsentIsNoop)
{
    Cache c(1024, 16);
    EXPECT_FALSE(c.invalidate(0x100).has_value());
}

TEST(Cache, DowngradeKeepsLineShared)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(5, 6));
    auto w = c.downgrade(0x100);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(c.state(0x100), LineState::Shared);
    EXPECT_EQ(c.readWord(0x100), 5u);
}

TEST(Cache, UpgradeMakesModified)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(5, 6));
    c.upgrade(0x100);
    EXPECT_EQ(c.state(0x100), LineState::Modified);
    c.writeWord(0x100, 9);
    EXPECT_EQ(c.readWord(0x100), 9u);
}

TEST(Cache, RefillSameLineOverwrites)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Modified, words(5, 6));
    auto victim = c.fill(0x100, LineState::Shared, words(9, 10));
    // Same line refill never reports itself as victim.
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(c.readWord(0x100), 9u);
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache c(1024, 16);
    c.fill(0x100, LineState::Shared, words(1, 2));
    c.fill(0x200, LineState::Modified, words(3, 4));
    c.flushAll();
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.contains(0x200));
}

// ---------------------------------------------------------------------
// Eviction races with recall (machine-level).
//
// Node 0 dirties L1, then writes L2 which conflicts with L1 in its
// direct-mapped cache, so the fill evicts L1 as a dirty victim
// (WbEvict toward home). Node 1 accesses L1 after a swept delay; for
// some delays the home's Recall/RecallX reaches node 0 after the
// eviction, and node 0 — no longer holding L1 — must answer
// RecallNoData. The home then closes the transaction off the WbEvict
// data. The auditor's finalize() proves the transaction closed and
// the directory agrees with every cache.
// ---------------------------------------------------------------------

sim::Thread
raceProgram(proc::Ctx &ctx, Addr l1, Addr l2, int evict_delay,
            bool writer)
{
    const int self = ctx.self();
    if (self == 0) {
        co_await ctx.write(l1, 111);
        co_await ctx.barrier();
        co_await ctx.compute(static_cast<double>(evict_delay));
        // Conflicting fill: evicts dirty L1 (WbEvict in flight).
        co_await ctx.write(l2, 222);
    } else if (self == 1) {
        co_await ctx.barrier();
        if (writer)
            co_await ctx.write(l1, 333); // RecallX path
        else
            co_await ctx.read(l1); // Recall path
    } else {
        co_await ctx.barrier();
    }
    co_await ctx.barrier();
    co_return;
}

/**
 * Sweep the evictor's delay until the recall-vs-eviction race is
 * actually hit (RecallNoData observed), asserting a clean audit and
 * correct memory every time.
 */
void
sweepRecallRace(bool writer)
{
    bool saw_race = false;
    for (int delay = 0; delay <= 60; delay += 2) {
        MachineConfig cfg;
        cfg.meshX = 2;
        cfg.meshY = 2;
        cfg.cacheBytes = 1024;
        Machine m(cfg, proc::SyncStyle::SharedMemory,
                  msg::RecvMode::Polling);
        check::InvariantAuditor auditor(
            {.abortOnViolation = false, .maxViolations = 4});
        auditor.attach(m);

        // l2 is exactly one cache stride past l1: same direct-mapped
        // set, guaranteed conflict. (A cache-sized span keeps the
        // barrier's own sync lines clear of l1's set.)
        const Addr l1 = m.mem().alloc(cfg.cacheBytes / 8,
                                      HomePolicy::Fixed, 3, "race");
        const Addr l2 = l1 + cfg.cacheBytes;
        (void)m.mem().alloc(cfg.wordsPerLine(), HomePolicy::Fixed, 3,
                            "race2");

        m.run([&, delay, writer](proc::Ctx &ctx) {
            return raceProgram(ctx, l1, l2, delay, writer);
        });
        auditor.finalize();

        for (const auto &v : auditor.violations())
            ADD_FAILURE() << "delay " << delay << ": " << v.invariant
                          << ": " << v.detail;
        EXPECT_EQ(m.debugWord(l1), writer ? 333u : 111u)
            << "delay " << delay;
        EXPECT_EQ(m.debugWord(l2), 222u) << "delay " << delay;
        if (auditor.messagesSeen(coh::MsgType::RecallNoData) > 0)
            saw_race = true;
    }
    EXPECT_TRUE(saw_race)
        << "sweep never produced the eviction-vs-recall race";
}

TEST(CacheRecallRace, DirtyEvictionDuringRecallXAnswersRecallNoData)
{
    sweepRecallRace(/*writer=*/true);
}

TEST(CacheRecallRace, DirtyEvictionDuringRecallAnswersRecallNoData)
{
    sweepRecallRace(/*writer=*/false);
}

} // namespace
} // namespace alewife::mem
