/**
 * @file
 * Workload-generator tests: determinism, structural invariants, and
 * sequential-reference sanity for all four application inputs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/bipartite.hh"
#include "workload/molecules.hh"
#include "workload/sparse_matrix.hh"
#include "workload/unstructured_mesh.hh"

namespace alewife::workload {
namespace {

// ------------------------------------------------------------------
// EM3D bipartite graph
// ------------------------------------------------------------------

TEST(Bipartite, Deterministic)
{
    BipartiteParams p;
    p.nodesPerSide = 200;
    p.nprocs = 8;
    const BipartiteGraph a = makeBipartite(p);
    const BipartiteGraph b = makeBipartite(p);
    ASSERT_EQ(a.eEdges.size(), b.eEdges.size());
    for (std::size_t i = 0; i < a.eEdges.size(); ++i) {
        EXPECT_EQ(a.eEdges[i].src, b.eEdges[i].src);
        EXPECT_DOUBLE_EQ(a.eEdges[i].weight, b.eEdges[i].weight);
    }
    EXPECT_DOUBLE_EQ(a.sequential(3), b.sequential(3));
}

TEST(Bipartite, DegreeIsExact)
{
    BipartiteParams p;
    p.nodesPerSide = 100;
    p.degree = 7;
    p.nprocs = 4;
    const BipartiteGraph g = makeBipartite(p);
    for (std::int32_t n = 0; n < p.nodesPerSide; ++n) {
        EXPECT_EQ(g.eRow[n + 1] - g.eRow[n], 7);
        EXPECT_EQ(g.hRow[n + 1] - g.hRow[n], 7);
    }
}

TEST(Bipartite, RemoteFractionNearTarget)
{
    BipartiteParams p;
    p.nodesPerSide = 4000;
    p.degree = 10;
    p.pctRemote = 0.2;
    p.nprocs = 32;
    const BipartiteGraph g = makeBipartite(p);
    std::int64_t remote = 0, total = 0;
    for (std::int32_t n = 0; n < p.nodesPerSide; ++n) {
        for (std::int32_t k = g.eRow[n]; k < g.eRow[n + 1]; ++k) {
            remote += g.owner(g.eEdges[k].src) != g.owner(n) ? 1 : 0;
            ++total;
        }
    }
    const double frac = static_cast<double>(remote) / total;
    EXPECT_NEAR(frac, 0.2, 0.03);
}

TEST(Bipartite, SpanBoundsRemoteEdges)
{
    BipartiteParams p;
    p.nodesPerSide = 3200;
    p.degree = 8;
    p.span = 3;
    p.nprocs = 32;
    const BipartiteGraph g = makeBipartite(p);
    for (std::int32_t n = 0; n < p.nodesPerSide; ++n) {
        for (std::int32_t k = g.eRow[n]; k < g.eRow[n + 1]; ++k) {
            const int d = std::abs(g.owner(g.eEdges[k].src)
                                   - g.owner(n));
            const int wrapped = std::min(d, p.nprocs - d);
            EXPECT_LE(wrapped, p.span);
        }
    }
}

TEST(Bipartite, SequentialConverges)
{
    BipartiteParams p;
    p.nodesPerSide = 100;
    p.nprocs = 4;
    const BipartiteGraph g = makeBipartite(p);
    const double s = g.sequential(5);
    EXPECT_TRUE(std::isfinite(s));
}

// ------------------------------------------------------------------
// UNSTRUC mesh
// ------------------------------------------------------------------

TEST(Mesh, Deterministic)
{
    MeshParams p;
    p.nodes = 300;
    p.nprocs = 8;
    const UnstructuredMesh a = makeMesh(p);
    const UnstructuredMesh b = makeMesh(p);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    EXPECT_DOUBLE_EQ(a.sequential(2), b.sequential(2));
}

TEST(Mesh, EdgesAreUniqueAndOrdered)
{
    MeshParams p;
    p.nodes = 500;
    p.nprocs = 8;
    const UnstructuredMesh m = makeMesh(p);
    std::set<std::pair<std::int32_t, std::int32_t>> seen;
    for (const MeshEdge &e : m.edges) {
        EXPECT_LT(e.u, e.v);
        EXPECT_GE(e.u, 0);
        EXPECT_LT(e.v, p.nodes);
        EXPECT_TRUE(seen.insert({e.u, e.v}).second);
    }
}

TEST(Mesh, MostEdgesAreLocal)
{
    MeshParams p;
    p.nodes = 2000;
    p.nprocs = 32;
    const UnstructuredMesh m = makeMesh(p);
    std::int64_t local = 0;
    for (const MeshEdge &e : m.edges)
        local += m.owner(e.u) == m.owner(e.v) ? 1 : 0;
    EXPECT_GT(static_cast<double>(local) / m.edges.size(), 0.4);
}

// ------------------------------------------------------------------
// ICCG triangular system
// ------------------------------------------------------------------

TEST(Triangular, Deterministic)
{
    TriangularParams p;
    p.rows = 400;
    p.nprocs = 8;
    const TriangularSystem a = makeTriangular(p);
    const TriangularSystem b = makeTriangular(p);
    EXPECT_DOUBLE_EQ(a.sequential(), b.sequential());
}

TEST(Triangular, StrictlyLowerTriangular)
{
    TriangularParams p;
    p.rows = 500;
    p.nprocs = 8;
    const TriangularSystem t = makeTriangular(p);
    for (std::int32_t r = 0; r < p.rows; ++r) {
        for (std::int32_t k = t.row[r]; k < t.row[r + 1]; ++k) {
            EXPECT_LT(t.entries[k].col, r);
            EXPECT_GE(t.entries[k].col, 0);
        }
    }
}

TEST(Triangular, SolveSatisfiesSystem)
{
    TriangularParams p;
    p.rows = 300;
    p.nprocs = 8;
    const TriangularSystem t = makeTriangular(p);
    const std::vector<double> x = t.solve();
    for (std::int32_t r = 0; r < p.rows; ++r) {
        double lhs = t.diag[r] * x[r];
        for (std::int32_t k = t.row[r]; k < t.row[r + 1]; ++k)
            lhs += t.entries[k].val * x[t.entries[k].col];
        EXPECT_NEAR(lhs, t.b[r], 1e-9);
    }
}

TEST(Triangular, HasDeepLevelStructure)
{
    TriangularParams p;
    p.rows = 2000;
    p.nprocs = 32;
    const TriangularSystem t = makeTriangular(p);
    // A DAG, not an embarrassingly parallel diagonal system.
    EXPECT_GT(t.levels(), 20);
    EXPECT_LT(t.levels(), p.rows);
}

TEST(Triangular, WrapMappingBalancesRows)
{
    TriangularParams p;
    p.rows = 640;
    p.nprocs = 32;
    const TriangularSystem t = makeTriangular(p);
    for (int q = 0; q < p.nprocs; ++q)
        EXPECT_EQ(t.rowsOf(q).size(), 20u);
}

// ------------------------------------------------------------------
// MOLDYN molecules
// ------------------------------------------------------------------

TEST(Moldyn, Deterministic)
{
    MoldynParams p;
    p.molecules = 256;
    p.nprocs = 8;
    const MoldynSystem a = makeMoldyn(p);
    const MoldynSystem b = makeMoldyn(p);
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    EXPECT_DOUBLE_EQ(a.sequential(3), b.sequential(3));
}

TEST(Moldyn, PairsRespectCutoff)
{
    MoldynParams p;
    p.molecules = 300;
    p.nprocs = 8;
    const MoldynSystem s = makeMoldyn(p);
    for (const Pair &pr : s.pairs) {
        EXPECT_LT(pr.i, pr.j);
        double d2 = 0;
        for (int d = 0; d < 3; ++d) {
            const double dx = s.init[pr.j].x[d] - s.init[pr.i].x[d];
            d2 += dx * dx;
        }
        EXPECT_LT(std::sqrt(d2), p.cutoff);
    }
}

TEST(Moldyn, RcbBlocksAreContiguousAndComplete)
{
    MoldynParams p;
    p.molecules = 500;
    p.nprocs = 32;
    const MoldynSystem s = makeMoldyn(p);
    EXPECT_EQ(s.firstOf.front(), 0);
    EXPECT_EQ(s.firstOf.back(), p.molecules);
    for (int q = 0; q < p.nprocs; ++q)
        EXPECT_LE(s.firstOf[q], s.firstOf[q + 1]);
    // Ownership must be consistent with the block boundaries.
    for (std::int32_t i = 0; i < p.molecules; ++i) {
        const int q = s.owner(i);
        EXPECT_GE(i, s.firstOf[q]);
        EXPECT_LT(i, s.firstOf[q + 1]);
    }
}

TEST(Moldyn, RcbReducesCrossPairs)
{
    MoldynParams p;
    p.molecules = 800;
    p.nprocs = 32;
    const MoldynSystem s = makeMoldyn(p);
    std::int64_t cross = 0;
    for (const Pair &pr : s.pairs)
        cross += s.owner(pr.i) != s.owner(pr.j) ? 1 : 0;
    // Spatial partitioning keeps most cutoff pairs within a group.
    EXPECT_LT(static_cast<double>(cross) / s.pairs.size(), 0.7);
    EXPECT_GT(s.pairs.size(), 100u);
}

TEST(Moldyn, MaxwellianVelocities)
{
    MoldynParams p;
    p.molecules = 4000;
    p.nprocs = 8;
    const MoldynSystem s = makeMoldyn(p);
    double sum = 0, sq = 0;
    for (const Molecule &m : s.init) {
        for (int d = 0; d < 3; ++d) {
            sum += m.v[d];
            sq += m.v[d] * m.v[d];
        }
    }
    const double n = 3.0 * p.molecules;
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.08);
}

} // namespace
} // namespace alewife::workload
