/**
 * @file
 * Randomized coherence stress tests (property-based, TEST_P over
 * seeds): every node performs a random mix of reads, writes, rmws and
 * prefetches against a small shared region. Invariants checked:
 *
 *  - per-word rmw counters: the sum of increments equals the number of
 *    rmw operations issued machine-wide (atomicity);
 *  - single-writer words: the final value is the last value written by
 *    the unique writer (no lost or reordered writes per location);
 *  - reads always return a value some node actually wrote (no
 *    out-of-thin-air data) — enforced by writing tagged values;
 *  - the simulation drains (no protocol deadlock) under heavy conflict.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hh"
#include "sim/rng.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

struct StressState
{
    Addr counters = 0; ///< one word per line, rmw-incremented
    Addr owned = 0;    ///< word i written only by node i
    int countersWords = 8;
    std::vector<std::uint64_t> rmwsIssued;
    std::vector<std::uint64_t> lastOwnValue;
    std::vector<std::uint64_t> seed;
    int opsPerNode = 120;
};

sim::Thread
stressProgram(Ctx &ctx, StressState &st)
{
    const int self = ctx.self();
    Rng rng(st.seed[self]);
    const std::uint32_t line =
        ctx.config().lineBytes; // one counter word per line

    for (int op = 0; op < st.opsPerNode; ++op) {
        const int kind = static_cast<int>(rng.nextBounded(100));
        const int slot =
            static_cast<int>(rng.nextBounded(st.countersWords));
        const Addr caddr = st.counters + static_cast<Addr>(slot) * line;

        if (kind < 35) {
            // Shared counter increment (atomicity probe).
            co_await ctx.rmw(caddr,
                             [](std::uint64_t v) { return v + 1; });
            ++st.rmwsIssued[self];
        } else if (kind < 55) {
            // Read some counter; value must never exceed the total
            // possible increments (checked loosely at the end).
            co_await ctx.read(caddr);
        } else if (kind < 75) {
            // Write our own word with a tagged, increasing value.
            const std::uint64_t v =
                (static_cast<std::uint64_t>(self) << 32)
                | static_cast<std::uint64_t>(op);
            co_await ctx.write(st.owned
                                   + static_cast<Addr>(self) * line,
                               v);
            st.lastOwnValue[self] = v;
        } else if (kind < 85) {
            // Read a random node's word (may race; just must not wedge
            // the protocol or return an untagged value).
            const int other =
                static_cast<int>(rng.nextBounded(ctx.nprocs()));
            const std::uint64_t v = co_await ctx.read(
                st.owned + static_cast<Addr>(other) * line);
            if (v != 0) {
                // Tag check: top half names the only legal writer.
                EXPECT_EQ(v >> 32, static_cast<std::uint64_t>(other));
            }
        } else if (kind < 95) {
            ctx.prefetchRead(caddr);
            co_await ctx.compute(10);
        } else {
            ctx.prefetchWrite(st.owned
                              + static_cast<Addr>(self) * line);
            co_await ctx.compute(10);
        }
        co_await ctx.compute(rng.nextBounded(30));
    }
    co_await ctx.barrier();
}

class CoherenceStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CoherenceStress, InvariantsHoldUnderRandomTraffic)
{
    MachineConfig cfg = smallConfig();
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);

    StressState st;
    st.countersWords = 8;
    st.counters = m.mem().alloc(
        static_cast<std::uint64_t>(st.countersWords)
            * m.mem().wordsPerLine(),
        mem::HomePolicy::Interleaved, 0, "stress-counters");
    st.owned = m.mem().alloc(
        static_cast<std::uint64_t>(m.nodes()) * m.mem().wordsPerLine(),
        mem::HomePolicy::Blocked, 0, "stress-owned");
    st.rmwsIssued.assign(m.nodes(), 0);
    st.lastOwnValue.assign(m.nodes(), 0);
    st.seed.resize(m.nodes());
    Rng seeder(GetParam());
    for (auto &s : st.seed)
        s = seeder.next();

    m.run([&](Ctx &ctx) { return stressProgram(ctx, st); });

    // Atomicity: counters sum to the number of rmws issued.
    std::uint64_t total_rmws = 0;
    for (auto v : st.rmwsIssued)
        total_rmws += v;
    std::uint64_t counter_sum = 0;
    for (int s = 0; s < st.countersWords; ++s) {
        counter_sum += m.debugWord(st.counters
                                   + static_cast<Addr>(s)
                                         * cfg.lineBytes);
    }
    EXPECT_EQ(counter_sum, total_rmws);

    // Per-word last-writer-wins for single-writer locations.
    for (int n = 0; n < m.nodes(); ++n) {
        EXPECT_EQ(m.debugWord(st.owned
                              + static_cast<Addr>(n) * cfg.lineBytes),
                  st.lastOwnValue[n])
            << "node " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceStress,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

/** Same stress on the full 32-node machine with a tiny cache, forcing
 *  constant evictions and writebacks through the protocol. */
TEST(CoherenceStressBig, TinyCacheEvictionStorm)
{
    MachineConfig cfg;
    cfg.cacheBytes = 256; // 16 lines: evictions everywhere
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);

    StressState st;
    st.countersWords = 32;
    st.opsPerNode = 60;
    st.counters = m.mem().alloc(
        static_cast<std::uint64_t>(st.countersWords)
            * m.mem().wordsPerLine(),
        mem::HomePolicy::Interleaved, 0, "storm-counters");
    st.owned = m.mem().alloc(
        static_cast<std::uint64_t>(m.nodes()) * m.mem().wordsPerLine(),
        mem::HomePolicy::Blocked, 0, "storm-owned");
    st.rmwsIssued.assign(m.nodes(), 0);
    st.lastOwnValue.assign(m.nodes(), 0);
    st.seed.resize(m.nodes());
    Rng seeder(0xabcdef);
    for (auto &s : st.seed)
        s = seeder.next();

    m.run([&](Ctx &ctx) { return stressProgram(ctx, st); });

    std::uint64_t total_rmws = 0;
    for (auto v : st.rmwsIssued)
        total_rmws += v;
    std::uint64_t counter_sum = 0;
    for (int s = 0; s < st.countersWords; ++s) {
        counter_sum += m.debugWord(st.counters
                                   + static_cast<Addr>(s)
                                         * cfg.lineBytes);
    }
    EXPECT_EQ(counter_sum, total_rmws);
    for (int n = 0; n < m.nodes(); ++n) {
        EXPECT_EQ(m.debugWord(st.owned
                              + static_cast<Addr>(n) * cfg.lineBytes),
                  st.lastOwnValue[n]);
    }
}

} // namespace
} // namespace alewife
