/**
 * @file
 * Coherence-protocol correctness tests: every test runs real node
 * programs on a small machine and checks architectural values and
 * counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "../test_util.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

struct Shared
{
    Addr a = 0;
    std::vector<double> out;
    std::vector<Tick> cycles;
};

Machine
makeMachine(MachineConfig cfg = smallConfig())
{
    return Machine(cfg, proc::SyncStyle::SharedMemory,
                   msg::RecvMode::Interrupt);
}

sim::Thread
readerProgram(Ctx &ctx, Shared &s)
{
    if (ctx.self() == 1) {
        const std::uint64_t v = co_await ctx.read(s.a);
        s.out[1] = Ctx::asDouble(v);
    }
    co_return;
}

TEST(Coherence, RemoteReadReturnsHomeValue)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.mem().storeDouble(s.a, 6.25);
    m.run([&](Ctx &ctx) { return readerProgram(ctx, s); });
    EXPECT_DOUBLE_EQ(s.out[1], 6.25);
    EXPECT_EQ(m.counters().remoteMisses, 1u);
    EXPECT_EQ(m.counters().localMisses, 0u);
}

sim::Thread
writeThenReadProgram(Ctx &ctx, Shared &s)
{
    // Node 0 writes; node 1 then reads the dirty line (recall path).
    if (ctx.self() == 0) {
        co_await ctx.writeD(s.a, 9.5);
    } else if (ctx.self() == 1) {
        co_await ctx.compute(3000); // let the write land first
        s.out[1] = Ctx::asDouble(co_await ctx.read(s.a));
    }
    co_return;
}

TEST(Coherence, DirtyRemoteReadRecallsFromOwner)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.mem().storeDouble(s.a, 1.0);
    m.run([&](Ctx &ctx) { return writeThenReadProgram(ctx, s); });
    EXPECT_DOUBLE_EQ(s.out[1], 9.5);
    // Memory at the home must also have been updated by the writeback.
    EXPECT_DOUBLE_EQ(m.mem().loadDouble(s.a), 9.5);
}

sim::Thread
invalidationProgram(Ctx &ctx, Shared &s, std::vector<double> &second)
{
    const int self = ctx.self();
    if (self != 0) {
        s.out[self] = Ctx::asDouble(co_await ctx.read(s.a));
        co_await ctx.barrier();
        co_await ctx.barrier();
        second[self] = Ctx::asDouble(co_await ctx.read(s.a));
    } else {
        co_await ctx.barrier();
        co_await ctx.writeD(s.a, 4.5);
        co_await ctx.barrier();
        second[0] = Ctx::asDouble(co_await ctx.read(s.a));
    }
    co_return;
}

TEST(Coherence, WriteInvalidatesAllSharers)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    std::vector<double> second(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 0);
    m.mem().storeDouble(s.a, 2.5);
    m.run([&](Ctx &ctx) {
        return invalidationProgram(ctx, s, second);
    });
    for (int i = 1; i < m.nodes(); ++i) {
        EXPECT_DOUBLE_EQ(s.out[i], 2.5) << i;
        EXPECT_DOUBLE_EQ(second[i], 4.5) << i;
    }
    EXPECT_GT(m.counters().invalidationsSent, 0u);
}

TEST(Coherence, ManySharersTriggersLimitless)
{
    MachineConfig cfg; // 32 nodes: well beyond 5 hardware pointers
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    std::vector<double> second(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 0);
    m.mem().storeDouble(s.a, 2.5);
    m.run([&](Ctx &ctx) {
        return invalidationProgram(ctx, s, second);
    });
    EXPECT_GT(m.counters().limitlessTraps, 0u);
    for (int i = 1; i < m.nodes(); ++i)
        EXPECT_DOUBLE_EQ(second[i], 4.5);
}

sim::Thread
rmwProgram(Ctx &ctx, Shared &s, int reps)
{
    for (int i = 0; i < reps; ++i) {
        co_await ctx.rmw(s.a,
                         [](std::uint64_t v) { return v + 1; });
    }
    co_return;
}

TEST(Coherence, RmwIsAtomicAcrossNodes)
{
    Machine m = makeMachine();
    Shared s;
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 3);
    const int reps = 20;
    m.run([&](Ctx &ctx) { return rmwProgram(ctx, s, reps); });
    EXPECT_EQ(m.debugWord(s.a),
              static_cast<std::uint64_t>(m.nodes()) * reps);
}

sim::Thread
evictionProgram(Ctx &ctx, Shared &s, Addr conflicting, int nlines)
{
    if (ctx.self() != 0)
        co_return;
    // Write one line, then march through addresses mapping to the same
    // set to force the dirty victim out.
    co_await ctx.writeD(s.a, 7.75);
    for (int i = 0; i < nlines; ++i) {
        // Same-set lines in a 1024-byte direct-mapped cache repeat
        // every 1024 bytes.
        co_await ctx.read(conflicting + static_cast<Addr>(i) * 1024);
    }
    co_return;
}

TEST(Coherence, DirtyVictimWritesBackToHome)
{
    MachineConfig cfg = smallConfig();
    cfg.cacheBytes = 1024; // tiny cache: 64 sets
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Shared s;
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 4);
    // A big arena to provide set-conflicting lines: pick the first
    // address in the arena congruent to s.a modulo the cache size.
    const Addr arena = m.mem().alloc(8 * 1024, mem::HomePolicy::Fixed, 4);
    Addr base = arena + ((s.a % 1024) + 1024 - (arena % 1024)) % 1024;
    m.mem().storeDouble(s.a, 0.0);
    m.run([&](Ctx &ctx) {
        return evictionProgram(ctx, s, base, 3);
    });
    // After eviction the home memory holds the written value.
    EXPECT_DOUBLE_EQ(m.mem().loadDouble(s.a), 7.75);
}

sim::Thread
lockProgram(Ctx &ctx, Shared &s, Addr data, int reps)
{
    for (int i = 0; i < reps; ++i) {
        co_await ctx.lock(s.a);
        // Non-atomic read-modify-write protected by the lock.
        const std::uint64_t v = co_await ctx.read(data, TimeCat::Sync);
        co_await ctx.compute(5);
        co_await ctx.write(data, v + 1, TimeCat::Sync);
        co_await ctx.unlock(s.a);
    }
    co_return;
}

TEST(Coherence, SpinLockGivesMutualExclusion)
{
    Machine m = makeMachine();
    Shared s;
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 2);
    const Addr data = m.mem().alloc(2, mem::HomePolicy::Fixed, 6);
    const int reps = 10;
    m.run([&](Ctx &ctx) { return lockProgram(ctx, s, data, reps); });
    EXPECT_EQ(m.debugWord(data),
              static_cast<std::uint64_t>(m.nodes()) * reps);
    EXPECT_EQ(m.counters().lockAcquires,
              static_cast<std::uint64_t>(m.nodes()) * reps);
}

sim::Thread
prefetchProgram(Ctx &ctx, Shared &s, bool exclusive)
{
    if (ctx.self() != 0)
        co_return;
    if (exclusive)
        ctx.prefetchWrite(s.a);
    else
        ctx.prefetchRead(s.a);
    co_await ctx.compute(500); // give the prefetch time to land
    s.out[0] = Ctx::asDouble(co_await ctx.read(s.a));
    co_return;
}

TEST(Coherence, ReadPrefetchIsUseful)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.mem().storeDouble(s.a, 3.5);
    m.run([&](Ctx &ctx) { return prefetchProgram(ctx, s, false); });
    EXPECT_DOUBLE_EQ(s.out[0], 3.5);
    EXPECT_EQ(m.counters().prefetchesIssued, 1u);
    EXPECT_EQ(m.counters().prefetchesUseful, 1u);
    EXPECT_EQ(m.counters().remoteMisses, 1u); // the prefetch itself
}

TEST(Coherence, WritePrefetchGrantsOwnership)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.mem().storeDouble(s.a, 1.25);
    m.run([&](Ctx &ctx) { return prefetchProgram(ctx, s, true); });
    EXPECT_DOUBLE_EQ(s.out[0], 1.25);
    EXPECT_EQ(m.counters().prefetchesUseful, 1u);
}

sim::Thread
nonBindingProgram(Ctx &ctx, Shared &s)
{
    if (ctx.self() == 0) {
        ctx.prefetchRead(s.a);
        co_await ctx.barrier(); // prefetch landed
        co_await ctx.barrier(); // writer done
        s.out[0] = Ctx::asDouble(co_await ctx.read(s.a));
    } else if (ctx.self() == 1) {
        co_await ctx.compute(1000);
        co_await ctx.barrier();
        co_await ctx.writeD(s.a, 8.5); // must invalidate the buffer
        co_await ctx.barrier();
    } else {
        co_await ctx.barrier();
        co_await ctx.barrier();
    }
    co_return;
}

TEST(Coherence, PrefetchIsNonBinding)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.mem().storeDouble(s.a, 1.0);
    m.run([&](Ctx &ctx) { return nonBindingProgram(ctx, s); });
    // The stale prefetched 1.0 must NOT be returned.
    EXPECT_DOUBLE_EQ(s.out[0], 8.5);
}

sim::Thread
spinWakeProgram(Ctx &ctx, Shared &s)
{
    if (ctx.self() == 0) {
        const std::uint64_t v = co_await ctx.spinUntil(
            s.a, [](std::uint64_t w) { return w != 0; });
        s.out[0] = static_cast<double>(v);
        s.cycles[0] = ctx.proc().localNow();
    } else if (ctx.self() == 1) {
        co_await ctx.compute(5000);
        co_await ctx.write(s.a, 77);
    }
    co_return;
}

TEST(Coherence, SpinUntilWakesOnInvalidation)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.cycles.assign(m.nodes(), 0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 2);
    m.run([&](Ctx &ctx) { return spinWakeProgram(ctx, s); });
    EXPECT_DOUBLE_EQ(s.out[0], 77.0);
    // Wake must happen shortly after the 5000-cycle write, not before.
    EXPECT_GT(ticksToCycles(s.cycles[0]), 5000.0);
    EXPECT_LT(ticksToCycles(s.cycles[0]), 5400.0);
}

sim::Thread
upgradePrefetchProgram(Ctx &ctx, Shared &s)
{
    // Regression: node 0 holds the line Shared, then exclusive-
    // prefetches it (upgrade). A later writer's recall must not leave a
    // stale readable copy at node 0.
    if (ctx.self() == 0) {
        s.out[0] = Ctx::asDouble(co_await ctx.read(s.a)); // Shared copy
        ctx.prefetchWrite(s.a); // upgrade into the prefetch machinery
        co_await ctx.barrier();
        co_await ctx.barrier(); // node 1 wrote
        s.out[2] = Ctx::asDouble(co_await ctx.read(s.a));
    } else if (ctx.self() == 1) {
        co_await ctx.barrier();
        co_await ctx.writeD(s.a, 64.0);
        co_await ctx.barrier();
    } else {
        co_await ctx.barrier();
        co_await ctx.barrier();
    }
    co_return;
}

TEST(Coherence, ExclusivePrefetchOfSharedLineStaysCoherent)
{
    Machine m = makeMachine();
    Shared s;
    s.out.assign(m.nodes(), 0.0);
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.mem().storeDouble(s.a, 8.0);
    m.run([&](Ctx &ctx) { return upgradePrefetchProgram(ctx, s); });
    EXPECT_DOUBLE_EQ(s.out[0], 8.0);
    EXPECT_DOUBLE_EQ(s.out[2], 64.0); // must see node 1's write
}

sim::Thread
falseSharingProgram(Ctx &ctx, Shared &s, int reps)
{
    // Nodes 0 and 1 write the two different words of the SAME line.
    if (ctx.self() > 1)
        co_return;
    const Addr mine = s.a + 8 * ctx.self();
    for (int i = 0; i < reps; ++i) {
        const std::uint64_t v = co_await ctx.read(mine);
        co_await ctx.write(mine, v + 1);
    }
    co_return;
}

TEST(Coherence, FalseSharingStaysCorrect)
{
    Machine m = makeMachine();
    Shared s;
    s.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 3);
    const int reps = 25;
    m.run([&](Ctx &ctx) {
        return falseSharingProgram(ctx, s, reps);
    });
    EXPECT_EQ(m.debugWord(s.a), static_cast<std::uint64_t>(reps));
    EXPECT_EQ(m.debugWord(s.a + 8), static_cast<std::uint64_t>(reps));
}

} // namespace
} // namespace alewife
