/**
 * @file
 * Tests for the 3-hop forwarding protocol variant: dirty misses are
 * served owner -> requester directly instead of through the home.
 * Checks both the latency win and full correctness under the racier
 * message orderings forwarding creates.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "apps/em3d.hh"
#include "apps/iccg.hh"
#include "apps/unstruc.hh"
#include "core/runner.hh"

namespace alewife {
namespace {

using proc::Ctx;
using test::smallConfig;

struct Fwd
{
    Addr a = 0;
    double out = 0.0;
    double cycles = 0.0;
};

sim::Thread
dirtyReadProgram(Ctx &ctx, Fwd &f)
{
    // Node 2 dirties the line (home is node 1); node 0 then reads it.
    if (ctx.self() == 2) {
        co_await ctx.writeD(f.a, 5.5);
    } else if (ctx.self() == 0) {
        co_await ctx.compute(4000);
        const Tick t0 = ctx.proc().localNow();
        f.out = Ctx::asDouble(co_await ctx.read(f.a));
        f.cycles = ticksToCycles(ctx.proc().localNow() - t0);
    }
    co_return;
}

double
dirtyReadLatency(bool forwarding, double *value = nullptr)
{
    MachineConfig cfg = smallConfig();
    cfg.threeHopForwarding = forwarding;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Fwd f;
    f.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);
    m.mem().storeDouble(f.a, 1.0);
    m.run([&](Ctx &ctx) { return dirtyReadProgram(ctx, f); });
    if (value)
        *value = f.out;
    // Memory at the home must be refreshed under both variants.
    EXPECT_DOUBLE_EQ(m.mem().loadDouble(f.a), 5.5);
    return f.cycles;
}

TEST(Forwarding, DirtyReadStillReturnsFreshData)
{
    double v = 0.0;
    dirtyReadLatency(true, &v);
    EXPECT_DOUBLE_EQ(v, 5.5);
}

TEST(Forwarding, CutsDirtyMissLatency)
{
    const double recall = dirtyReadLatency(false);
    const double fwd = dirtyReadLatency(true);
    // 3 serial hops instead of 4: a solid constant-factor win.
    EXPECT_LT(fwd, recall - 10.0);
}

sim::Thread
handoffProgram(Ctx &ctx, Addr a, int rounds)
{
    // All nodes hammer rmw increments: ownership hands off constantly
    // through the forwarded path.
    for (int i = 0; i < rounds; ++i) {
        co_await ctx.rmw(a, [](std::uint64_t v) { return v + 1; });
        co_await ctx.compute(7);
    }
    co_return;
}

TEST(Forwarding, OwnershipHandoffChainStaysAtomic)
{
    MachineConfig cfg = smallConfig();
    cfg.threeHopForwarding = true;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 3);
    const int rounds = 40;
    m.run([&](Ctx &ctx) { return handoffProgram(ctx, a, rounds); });
    EXPECT_EQ(m.debugWord(a),
              static_cast<std::uint64_t>(m.nodes()) * rounds);
}

TEST(Forwarding, Em3dVerifiesUnderForwarding)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 384;
    p.graph.degree = 5;
    p.iters = 2;
    for (auto mech : {core::Mechanism::SharedMemory,
                      core::Mechanism::SharedMemoryPrefetch}) {
        apps::Em3d app(p);
        core::RunSpec spec;
        spec.machine.threeHopForwarding = true;
        spec.mechanism = mech;
        const auto r = core::runApp(app, spec, false);
        EXPECT_TRUE(r.verified) << core::mechanismName(mech);
    }
}

TEST(Forwarding, IccgProducerComputesVerifiesUnderForwarding)
{
    // ICCG's producer-computes pattern is all ownership handoffs: the
    // harshest consumer of the forwarded path.
    apps::Iccg::Params p;
    p.matrix.rows = 480;
    apps::Iccg app(p);
    core::RunSpec spec;
    spec.machine.threeHopForwarding = true;
    spec.mechanism = core::Mechanism::SharedMemory;
    const auto r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified);
}

TEST(Forwarding, UnstrucLocksVerifyUnderForwarding)
{
    // UNSTRUC's contested f-lines exercise lock handoffs (spin +
    // rmw + plain read/write on separate lines) through the forwarded
    // dirty-miss path.
    apps::Unstruc::Params p;
    p.mesh.nodes = 480;
    p.iters = 2;
    apps::Unstruc app(p);
    core::RunSpec spec;
    spec.machine.threeHopForwarding = true;
    spec.mechanism = core::Mechanism::SharedMemory;
    const auto r = core::runApp(app, spec, false);
    EXPECT_TRUE(r.verified)
        << "got " << r.checksum << " want " << r.reference;
}

TEST(Forwarding, EndToEndEffectIsModest)
{
    // The microbenchmark win above does not automatically translate to
    // end-to-end gains: under heavy migratory contention (ICCG's
    // producer-computes locks), requests chase moving owners and the
    // stash/fallback paths eat the hop saved. We assert the honest
    // property — forwarding changes ICCG by a modest factor either
    // way, never catastrophically.
    apps::Iccg::Params p;
    p.matrix.rows = 480;
    auto run = [&](bool fwd) {
        apps::Iccg app(p);
        core::RunSpec spec;
        spec.machine.threeHopForwarding = fwd;
        spec.mechanism = core::Mechanism::SharedMemory;
        return core::runApp(app, spec).runtimeCycles;
    };
    const double ratio = run(true) / run(false);
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.25);
}

sim::Thread
homeRequesterProgram(Ctx &ctx, Fwd &f)
{
    // Node 2 dirties a line homed at node 1; node 1 (the home itself)
    // then reads it — the forwarded Data targets the home-requester.
    if (ctx.self() == 2) {
        co_await ctx.writeD(f.a, 7.25);
    } else if (ctx.self() == 1) {
        co_await ctx.compute(4000);
        f.out = Ctx::asDouble(co_await ctx.read(f.a));
    }
    co_return;
}

TEST(Forwarding, HomeAsRequesterGetsForwardedData)
{
    MachineConfig cfg = smallConfig();
    cfg.threeHopForwarding = true;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    Fwd f;
    f.a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);
    m.mem().storeDouble(f.a, 1.0);
    m.run([&](Ctx &ctx) { return homeRequesterProgram(ctx, f); });
    EXPECT_DOUBLE_EQ(f.out, 7.25);
    EXPECT_DOUBLE_EQ(m.mem().loadDouble(f.a), 7.25);
}

TEST(Forwarding, ExclusiveHandoffKeepsMemoryEventuallyConsistent)
{
    // After a forwarded GetX chain, the final owner's eventual
    // writeback must land the newest value in memory.
    MachineConfig cfg = smallConfig();
    cfg.threeHopForwarding = true;
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 0);
    auto prog = [a](Ctx &ctx) -> sim::Thread {
        // Chain of writers 1 -> 2 -> 3, handing ownership forward.
        if (ctx.self() >= 1 && ctx.self() <= 3) {
            co_await ctx.compute(1500.0 * ctx.self());
            co_await ctx.writeD(a, static_cast<double>(ctx.self()));
        }
        co_return;
    };
    m.run(prog);
    EXPECT_DOUBLE_EQ(m.debugDouble(a), 3.0);
}

TEST(Forwarding, EvictionRaceFallsBackToHome)
{
    // Owner evicts the dirty line just as a forward heads its way: the
    // WbEvict arrives first and the home serves the requester itself.
    MachineConfig cfg = smallConfig();
    cfg.threeHopForwarding = true;
    cfg.cacheBytes = 1024; // tiny: eviction pressure
    Machine m(cfg, proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 1);
    const Addr arena = m.mem().alloc(2048, mem::HomePolicy::Fixed, 1);
    m.mem().storeDouble(a, 2.0);

    struct St
    {
        Addr a, arena;
        double got = 0.0;
    } st{a, arena, 0.0};

    auto prog = [&st](Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 2) {
            co_await ctx.writeD(st.a, 9.0);
            // Conflict-evict the dirty line while node 0's read races.
            const Addr base =
                st.arena
                + ((st.a % 1024) + 1024 - (st.arena % 1024)) % 1024;
            for (int i = 0; i < 3; ++i)
                co_await ctx.read(base + static_cast<Addr>(i) * 1024);
        } else if (ctx.self() == 0) {
            co_await ctx.compute(3600);
            st.got = Ctx::asDouble(co_await ctx.read(st.a));
        }
        co_return;
    };
    m.run(prog);
    EXPECT_DOUBLE_EQ(st.got, 9.0);
    EXPECT_DOUBLE_EQ(m.mem().loadDouble(a), 9.0);
}

} // namespace
} // namespace alewife
