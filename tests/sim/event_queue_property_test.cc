/**
 * @file
 * Property test: the EventQueue against a naive reference model.
 * Random schedules, nested schedules and cancellations must fire in
 * exactly the order a sorted-stable reference predicts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace alewife {
namespace {

struct RefEvent
{
    Tick when;
    std::uint64_t seq;
    int id;
    bool cancelled = false;
};

class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventQueueProperty, MatchesReferenceModel)
{
    Rng rng(GetParam());
    EventQueue eq;
    std::vector<int> fired;
    std::vector<RefEvent> ref;
    std::vector<EventHandle> handles;
    std::uint64_t seq = 0;
    int next_id = 0;

    // Phase 1: random initial schedule.
    for (int i = 0; i < 200; ++i) {
        const Tick when = rng.nextBounded(1000);
        const int id = next_id++;
        ref.push_back({when, seq++, id});
        handles.push_back(
            eq.schedule(when, [&fired, id]() { fired.push_back(id); }));
    }

    // Phase 2: cancel a random subset.
    for (int i = 0; i < 60; ++i) {
        const auto k = rng.nextBounded(handles.size());
        handles[k].cancel();
        ref[k].cancelled = true;
    }

    // Reference order: (when, seq), skipping cancelled.
    std::vector<RefEvent> order = ref;
    order.erase(std::remove_if(order.begin(), order.end(),
                               [](const RefEvent &e) {
                                   return e.cancelled;
                               }),
                order.end());
    std::stable_sort(order.begin(), order.end(),
                     [](const RefEvent &a, const RefEvent &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.seq < b.seq;
                     });

    eq.run();

    ASSERT_EQ(fired.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(fired[i], order[i].id) << "position " << i;
}

TEST_P(EventQueueProperty, NestedSchedulingKeepsTimeMonotone)
{
    Rng rng(GetParam());
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    int remaining = 300;

    std::function<void()> chain = [&]() {
        if (eq.now() < last)
            monotone = false;
        last = eq.now();
        if (--remaining > 0) {
            eq.schedule(eq.now() + rng.nextBounded(50),
                        [&]() { chain(); });
        }
    };
    eq.schedule(0, chain);
    eq.run();

    EXPECT_TRUE(monotone);
    EXPECT_EQ(remaining, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

} // namespace
} // namespace alewife
