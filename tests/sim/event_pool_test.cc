/**
 * @file
 * Tests for the allocation-free kernel hot path: the slab/free-list
 * event pool, generation-counted handles, the InlineFn small-buffer
 * callback type, and a determinism regression pinning full-machine
 * statistics to pre-refactor golden values.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "apps/em3d.hh"
#include "core/runner.hh"
#include "sim/event_queue.hh"
#include "sim/inline_fn.hh"
#include "sim/small_vec.hh"

namespace alewife {
namespace {

// ---------------------------------------------------------------------
// InlineFn
// ---------------------------------------------------------------------

TEST(InlineFn, InvokesInlineCapture)
{
    int hits = 0;
    sim::InlineFn<32> fn([&hits]() { ++hits; });
    EXPECT_TRUE(static_cast<bool>(fn));
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeapAndStillWorks)
{
    struct Big
    {
        char pad[256];
    };
    Big big{};
    big.pad[0] = 7;
    char seen = 0;
    sim::InlineFn<32> fn([big, &seen]() { seen = big.pad[0]; });
    static_assert(!sim::InlineFn<32>::fitsInline<
                  std::remove_reference_t<decltype(fn)>>());
    fn();
    EXPECT_EQ(seen, 7);
}

TEST(InlineFn, MoveTransfersOwnershipOfCapturedState)
{
    auto flag = std::make_shared<int>(0);
    sim::InlineFn<64> a([flag]() { ++*flag; });
    EXPECT_EQ(flag.use_count(), 2);
    sim::InlineFn<64> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(flag.use_count(), 2); // moved, not copied
    b();
    EXPECT_EQ(*flag, 1);
    b.reset();
    EXPECT_EQ(flag.use_count(), 1); // capture destroyed on reset
}

TEST(InlineFn, EmptyAfterDefaultConstruction)
{
    sim::InlineFn<32> fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    fn.reset(); // no-op, must not crash
}

// ---------------------------------------------------------------------
// SmallVec (the mesh route scratch type)
// ---------------------------------------------------------------------

TEST(SmallVec, StaysInlineUpToCapacityThenSpills)
{
    sim::SmallVec<int, 4> v;
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_TRUE(v.inlineStorage());
    v.push_back(4);
    EXPECT_FALSE(v.inlineStorage());
    ASSERT_EQ(v.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, ClearKeepsSpilledCapacity)
{
    sim::SmallVec<int, 2> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(i);
    const auto cap = v.capacity();
    v.clear();
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), cap); // no realloc churn on reuse
    v.push_back(42);
    EXPECT_EQ(v[0], 42);
}

// ---------------------------------------------------------------------
// Event pool semantics
// ---------------------------------------------------------------------

TEST(EventPool, CancelAfterFireIsNoop)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(h.pending());
    h.cancel(); // slot already recycled; must not disturb anything
    h.cancel();
    EXPECT_FALSE(h.pending());
}

TEST(EventPool, CancelFromInsideCallbackKillsPendingPeer)
{
    EventQueue eq;
    int fired = 0;
    EventHandle victim = eq.schedule(20, [&]() { ++fired; });
    eq.schedule(10, [&]() { victim.cancel(); });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.eventsExecuted(), 1u);
}

TEST(EventPool, SelfCancelInsideCallbackIsNoop)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h;
    h = eq.schedule(10, [&]() {
        ++fired;
        EXPECT_FALSE(h.pending()); // already counted as fired
        h.cancel();
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.eventsExecuted(), 1u);
}

TEST(EventPool, HandleOutlivesQueue)
{
    EventHandle pendingAtDeath;
    EventHandle firedBeforeDeath;
    {
        EventQueue eq;
        firedBeforeDeath = eq.schedule(1, []() {});
        pendingAtDeath = eq.schedule(100, []() { FAIL(); });
        eq.runUntil(10);
    }
    // The queue (and its pool) are gone: handles must answer safely.
    EXPECT_FALSE(pendingAtDeath.pending());
    EXPECT_FALSE(firedBeforeDeath.pending());
    pendingAtDeath.cancel(); // must not crash
}

TEST(EventPool, StaleHandleDoesNotAffectSlotReuser)
{
    // Fire event A, then schedule B (which recycles A's slot in a
    // single-event queue). A's stale handle must neither report B as
    // pending nor cancel it.
    EventQueue eq;
    int fired = 0;
    EventHandle a = eq.schedule(1, [&]() { ++fired; });
    eq.processOne();
    EXPECT_FALSE(a.pending());
    EventHandle b = eq.schedule(2, [&]() { ++fired; });
    EXPECT_FALSE(a.pending());
    a.cancel();
    EXPECT_TRUE(b.pending());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventPool, ReuseUnderChurnStaysCorrect)
{
    // Waves of schedule/cancel/fire far exceeding one slab: every wave
    // recycles the same slots; counts must stay exact and cancelled
    // events must never fire.
    EventQueue eq;
    std::uint64_t fired = 0;
    Tick t = 1;
    for (int wave = 0; wave < 100; ++wave) {
        std::vector<EventHandle> handles;
        for (int i = 0; i < 64; ++i)
            handles.push_back(
                eq.schedule(t + static_cast<Tick>(i), [&]() { ++fired; }));
        for (int i = 0; i < 64; i += 2)
            handles[static_cast<std::size_t>(i)].cancel();
        eq.run();
        for (const auto &h : handles)
            EXPECT_FALSE(h.pending());
        t = eq.now() + 1;
    }
    EXPECT_EQ(fired, 100u * 32u);
    EXPECT_EQ(eq.eventsExecuted(), 100u * 32u);
}

TEST(EventPool, CallbackSchedulingIntoRecycledSlotKeepsOrder)
{
    // A callback that schedules its successor immediately reuses the
    // slot just vacated; ordering and counts must be unaffected.
    EventQueue eq;
    std::vector<Tick> at;
    struct Step
    {
        EventQueue *eq;
        std::vector<Tick> *at;
        int left;
        void
        operator()() const
        {
            at->push_back(eq->now());
            if (left > 0)
                eq->schedule(eq->now() + 5, Step{eq, at, left - 1});
        }
    };
    eq.schedule(5, Step{&eq, &at, 9});
    eq.run();
    ASSERT_EQ(at.size(), 10u);
    for (std::size_t i = 0; i < at.size(); ++i)
        EXPECT_EQ(at[i], 5 * (i + 1));
}

// ---------------------------------------------------------------------
// Determinism regression: full-machine statistics must be bit-identical
// to the pre-refactor kernel (goldens recorded from the std::function +
// shared_ptr implementation at the same seeds).
// ---------------------------------------------------------------------

struct Golden
{
    core::Mechanism mech;
    bool perturb;
    std::uint64_t simEvents;
    double runtimeCycles;
    double checksum;
    std::uint64_t volume;
    std::uint64_t cacheHits;
};

core::RunResult
runGolden(const Golden &g)
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    apps::Em3d app(p);
    core::RunSpec spec;
    spec.mechanism = g.mech;
    if (g.perturb) {
        spec.perturb.tieBreak = true;
        spec.perturb.seed = 12345;
    }
    return core::runApp(app, spec);
}

class KernelGolden : public ::testing::TestWithParam<Golden>
{
};

TEST_P(KernelGolden, StatsBitIdenticalToPreRefactorKernel)
{
    const Golden &g = GetParam();
    const auto r = runGolden(g);
    EXPECT_EQ(r.simEvents, g.simEvents);
    EXPECT_EQ(r.runtimeCycles, g.runtimeCycles);
    EXPECT_EQ(r.checksum, g.checksum);
    EXPECT_EQ(r.volume.total(), g.volume);
    EXPECT_EQ(r.counters.cacheHits, g.cacheHits);
}

INSTANTIATE_TEST_SUITE_P(
    PreRefactorGoldens, KernelGolden,
    ::testing::Values(
        Golden{core::Mechanism::SharedMemory, false, 18925,
               11599.190000000001, 390.53411890422058, 84960, 7118},
        Golden{core::Mechanism::SharedMemory, true, 18925,
               11587.620000000001, 390.53411890422058, 84960, 7118},
        Golden{core::Mechanism::MpInterrupt, false, 2992, 5662.79,
               390.53411890422069, 19056, 0},
        Golden{core::Mechanism::MpInterrupt, true, 3009, 5726.79,
               390.53411890422069, 19056, 0},
        Golden{core::Mechanism::BulkTransfer, false, 3413,
               7016.3800000000001, 390.53411890422069, 24096, 0}),
    [](const auto &info) {
        const Golden &g = info.param;
        std::string n =
            g.mech == core::Mechanism::SharedMemory    ? "SM"
            : g.mech == core::Mechanism::MpInterrupt   ? "MPI"
                                                       : "BULK";
        return n + (g.perturb ? "_perturbed" : "_plain");
    });

} // namespace
} // namespace alewife
