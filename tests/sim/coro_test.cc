/**
 * @file
 * Tests for the coroutine plumbing (Thread, SubTask).
 */

#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>
#include <vector>

#include "sim/coro.hh"

namespace alewife::sim {
namespace {

/** A trivially resumable awaitable that records its suspension. */
struct ManualAwait
{
    std::coroutine_handle<> *slot;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) const { *slot = h; }
    void await_resume() const {}
};

Thread
simpleProgram(int &out, std::coroutine_handle<> &slot)
{
    out = 1;
    co_await ManualAwait{&slot};
    out = 2;
}

TEST(Thread, StartsSuspendedAndRunsOnResume)
{
    int out = 0;
    std::coroutine_handle<> slot;
    Thread t = simpleProgram(out, slot);
    EXPECT_FALSE(t.done());
    EXPECT_EQ(out, 0);
    t.resume();
    EXPECT_EQ(out, 1);
    EXPECT_FALSE(t.done());
    slot.resume();
    EXPECT_EQ(out, 2);
    EXPECT_TRUE(t.done());
}

Thread
throwingProgram()
{
    co_await std::suspend_never{};
    throw std::runtime_error("boom");
}

TEST(Thread, ExceptionSurfacesOnResume)
{
    Thread t = throwingProgram();
    EXPECT_THROW(t.resume(), std::runtime_error);
    EXPECT_TRUE(t.done());
}

SubTask<int>
innerValue(std::coroutine_handle<> &slot)
{
    co_await ManualAwait{&slot};
    co_return 42;
}

Thread
outerProgram(int &out, std::coroutine_handle<> &slot)
{
    out = co_await innerValue(slot);
}

TEST(SubTask, ValuePropagatesThroughNesting)
{
    int out = 0;
    std::coroutine_handle<> slot;
    Thread t = outerProgram(out, slot);
    t.resume(); // runs into the subtask, suspends at ManualAwait
    EXPECT_EQ(out, 0);
    EXPECT_FALSE(t.done());
    slot.resume(); // completes subtask, symmetric-transfers to parent
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(t.done());
}

SubTask<void>
innerThrows()
{
    co_await std::suspend_never{};
    throw std::logic_error("inner");
}

Thread
outerCatches(bool &caught)
{
    try {
        co_await innerThrows();
    } catch (const std::logic_error &) {
        caught = true;
    }
}

TEST(SubTask, ExceptionPropagatesToParent)
{
    bool caught = false;
    Thread t = outerCatches(caught);
    t.resume();
    EXPECT_TRUE(caught);
    EXPECT_TRUE(t.done());
}

SubTask<int>
deepest(std::coroutine_handle<> &slot)
{
    co_await ManualAwait{&slot};
    co_return 7;
}

SubTask<int>
middle(std::coroutine_handle<> &slot)
{
    const int v = co_await deepest(slot);
    co_return v * 3;
}

Thread
deepProgram(int &out, std::coroutine_handle<> &slot)
{
    out = co_await middle(slot);
}

TEST(SubTask, TwoLevelNesting)
{
    int out = 0;
    std::coroutine_handle<> slot;
    Thread t = deepProgram(out, slot);
    t.resume();
    slot.resume();
    EXPECT_EQ(out, 21);
    EXPECT_TRUE(t.done());
}

TEST(Thread, MoveTransfersOwnership)
{
    int out = 0;
    std::coroutine_handle<> slot;
    Thread a = simpleProgram(out, slot);
    Thread b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.resume();
    EXPECT_EQ(out, 1);
}

} // namespace
} // namespace alewife::sim
