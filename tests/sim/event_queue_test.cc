/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace alewife {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.schedule(5, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&]() { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&]() { ++fired; });
    eq.run();
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not crash
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(100, [&]() { ++fired; });
    EXPECT_FALSE(eq.runUntil(50));
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.runUntil(200));
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EmptyReflectsLiveEventsOnly)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventHandle h = eq.schedule(10, []() {});
    EXPECT_FALSE(eq.empty());
    h.cancel();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ScheduleInUsesRelativeDelay)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&]() {
        eq.scheduleIn(5, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, []() {}), "past");
}

TEST(EventQueueDeath, PastSchedulingFromCallbackPanics)
{
    // The precondition must hold inside callbacks too, where now() has
    // already advanced to the firing tick.
    EventQueue eq;
    EXPECT_DEATH(
        {
            eq.schedule(10, [&]() { eq.schedule(5, []() {}); });
            eq.run();
        },
        "past");
}

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    // Boundary of the precondition: when == now() is legal and the
    // event fires in the same processing pass, after queued peers.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() {
        order.push_back(1);
        eq.schedule(eq.now(), [&]() { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, CancelInsideOwnCallbackIsNoop)
{
    // By the time the callback runs the event is already "fired";
    // self-cancellation must neither crash nor un-count it.
    EventQueue eq;
    int fired = 0;
    EventHandle h;
    h = eq.schedule(10, [&]() {
        ++fired;
        EXPECT_FALSE(h.pending());
        h.cancel();
        EXPECT_FALSE(h.pending());
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.eventsExecuted(), 1u);
}

TEST(EventQueue, DoubleCancelAndDefaultHandleAreSafe)
{
    EventQueue eq;
    int fired = 0;
    EventHandle h = eq.schedule(10, [&]() { ++fired; });
    h.cancel();
    h.cancel(); // second cancel: no-op
    EXPECT_FALSE(h.pending());

    EventHandle dead; // never scheduled
    EXPECT_FALSE(dead.pending());
    dead.cancel(); // must not crash
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, SameTickPeerCanCancelLaterEvent)
{
    // An event may cancel a peer scheduled for the same tick that has
    // not yet fired; the peer must be skipped, not resurrected.
    EventQueue eq;
    int fired = 0;
    EventHandle victim;
    eq.schedule(10, [&]() { victim.cancel(); });
    victim = eq.schedule(10, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.eventsExecuted(), 1u);
    EXPECT_FALSE(victim.pending());
}

TEST(EventQueue, HandleCopiesShareCancellationState)
{
    EventQueue eq;
    int fired = 0;
    EventHandle a = eq.schedule(10, [&]() { ++fired; });
    EventHandle b = a; // copies refer to the same scheduled event
    b.cancel();
    EXPECT_FALSE(a.pending());
    eq.run();
    EXPECT_EQ(fired, 0);
}

} // namespace
} // namespace alewife
