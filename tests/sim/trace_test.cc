/**
 * @file
 * Tests for the categorized trace switchboard.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "sim/trace.hh"

namespace alewife {
namespace {

TEST(Trace, CategoriesToggleIndependently)
{
    Trace::enableAll(false);
    EXPECT_FALSE(Trace::enabled(TraceCat::Coh));
    Trace::enable(TraceCat::Coh);
    EXPECT_TRUE(Trace::enabled(TraceCat::Coh));
    EXPECT_FALSE(Trace::enabled(TraceCat::Net));
    Trace::enable(TraceCat::Coh, false);
    EXPECT_FALSE(Trace::enabled(TraceCat::Coh));
}

TEST(Trace, NamesMatchCategories)
{
    EXPECT_STREQ(traceCatName(TraceCat::Coh), "coh");
    EXPECT_STREQ(traceCatName(TraceCat::Net), "net");
    EXPECT_STREQ(traceCatName(TraceCat::Msg), "msg");
    EXPECT_STREQ(traceCatName(TraceCat::Proc), "proc");
    EXPECT_STREQ(traceCatName(TraceCat::Sync), "sync");
    EXPECT_STREQ(traceCatName(TraceCat::Obs), "obs");
}

TEST(Trace, EnabledCategoryEmitsDuringSimulation)
{
    Trace::enableAll(false);
    Trace::enable(TraceCat::Coh);
    const auto before = Trace::linesEmitted();

    Machine m(test::smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.run([a](proc::Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0)
            co_await ctx.read(a);
        co_return;
    });

    EXPECT_GT(Trace::linesEmitted(), before);
    Trace::enableAll(false);
}

TEST(Trace, DisabledCategoriesAreSilent)
{
    Trace::enableAll(false);
    const auto before = Trace::linesEmitted();

    Machine m(test::smallConfig(), proc::SyncStyle::SharedMemory,
              msg::RecvMode::Interrupt);
    const Addr a = m.mem().alloc(2, mem::HomePolicy::Fixed, 5);
    m.run([a](proc::Ctx &ctx) -> sim::Thread {
        if (ctx.self() == 0)
            co_await ctx.read(a);
        co_return;
    });

    EXPECT_EQ(Trace::linesEmitted(), before);
}

} // namespace
} // namespace alewife
