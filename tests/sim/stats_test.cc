/**
 * @file
 * Tests for the statistics containers.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace alewife {
namespace {

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(cyclesToTicks(std::uint64_t(5)), 500u);
    EXPECT_EQ(cyclesToTicks(0.8), 80u);
    EXPECT_EQ(cyclesToTicks(1.6), 160u);
    EXPECT_DOUBLE_EQ(ticksToCycles(250), 2.5);
}

TEST(TimeBreakdown, AddAndTotal)
{
    TimeBreakdown b;
    b.add(TimeCat::Compute, 100);
    b.add(TimeCat::Sync, 50);
    b.add(TimeCat::Compute, 25);
    EXPECT_EQ(b.get(TimeCat::Compute), 125u);
    EXPECT_EQ(b.total(), 175u);
}

TEST(TimeBreakdown, Accumulate)
{
    TimeBreakdown a, b;
    a.add(TimeCat::MemWait, 10);
    b.add(TimeCat::MemWait, 20);
    b.add(TimeCat::MsgOverhead, 5);
    a += b;
    EXPECT_EQ(a.get(TimeCat::MemWait), 30u);
    EXPECT_EQ(a.get(TimeCat::MsgOverhead), 5u);
}

TEST(VolumeBreakdown, AddAndTotal)
{
    VolumeBreakdown v;
    v.add(VolCat::Requests, 16);
    v.add(VolCat::Data, 32);
    v.add(VolCat::Requests, 16);
    EXPECT_EQ(v.get(VolCat::Requests), 32u);
    EXPECT_EQ(v.total(), 64u);
}

TEST(MachineCounters, Accumulate)
{
    MachineCounters a, b;
    a.cacheHits = 5;
    b.cacheHits = 7;
    b.limitlessTraps = 2;
    a += b;
    EXPECT_EQ(a.cacheHits, 12u);
    EXPECT_EQ(a.limitlessTraps, 2u);
}

TEST(Stats, CategoryNames)
{
    EXPECT_STREQ(timeCatName(TimeCat::Compute), "compute");
    EXPECT_STREQ(timeCatName(TimeCat::Sync), "sync");
    EXPECT_STREQ(volCatName(VolCat::Invalidates), "invalidates");
    EXPECT_STREQ(volCatName(VolCat::Data), "data");
}

} // namespace
} // namespace alewife
