/**
 * @file
 * Property test for sim::RadixQueue: its pop sequence must be
 * *identical* to a reference std::priority_queue over the same
 * (when, pri, seq) total order — the event queue's determinism
 * contract rides on this. The driver replays randomized interleavings
 * of pushes and pops that cover every structural path: same-tick
 * bursts, perturbation-style priorities (random for future ticks, max
 * for at-now ticks), far-future ticks that exercise high buckets, and
 * the side-buffer case where an entry is pushed below a peeked floor.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/radix_queue.hh"
#include "sim/types.hh"

namespace alewife {
namespace {

struct Entry
{
    Tick when;
    std::uint64_t pri;
    std::uint64_t seq;
};

struct Later
{
    bool
    operator()(const Entry &a, const Entry &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.pri != b.pri)
            return a.pri > b.pri;
        return a.seq > b.seq;
    }
};

using Reference =
    std::priority_queue<Entry, std::vector<Entry>, Later>;

TEST(RadixQueue, PopsInTotalOrderAcrossRandomInterleavings)
{
    for (unsigned trial = 0; trial < 64; ++trial) {
        sim::RadixQueue<Entry> rq;
        Reference ref;
        std::mt19937_64 rng(1000 + trial);
        std::uint64_t seq = 0;
        Tick now = 0; // when of the last popped entry
        const bool perturb = trial % 2 != 0;
        for (int op = 0; op < 4000; ++op) {
            if (rng() % 100 < 55 || ref.empty()) {
                // Occasionally peek first so the floor settles ahead
                // of now — the subsequent at-now push then lands in
                // the side buffer.
                if (rng() % 8 == 0 && !ref.empty()) {
                    (void)rq.top();
                    (void)ref.top();
                }
                Tick d = 0;
                switch (rng() % 5) {
                case 0: d = 0; break;
                case 1: d = rng() % 3; break;
                case 2: d = rng() % 50; break;
                case 3: d = rng() % 5000; break;
                default: d = rng() % 1000000; break;
                }
                std::uint64_t pri = 0;
                if (perturb)
                    pri = d == 0 ? ~0ull : rng();
                const Entry e{now + d, pri, seq++};
                rq.push(e);
                ref.push(e);
            } else {
                const Entry got = rq.top();
                const Entry want = ref.top();
                ASSERT_EQ(got.seq, want.seq)
                    << "trial " << trial << " op " << op;
                ASSERT_EQ(got.when, want.when);
                ASSERT_EQ(got.pri, want.pri);
                rq.pop();
                ref.pop();
                now = got.when;
            }
            ASSERT_EQ(rq.size(), ref.size());
            ASSERT_EQ(rq.empty(), ref.empty());
        }
        while (!ref.empty()) {
            ASSERT_EQ(rq.top().seq, ref.top().seq) << "drain, trial "
                                                   << trial;
            rq.pop();
            ref.pop();
        }
        ASSERT_TRUE(rq.empty());
    }
}

TEST(RadixQueue, AnyScansEveryRegion)
{
    sim::RadixQueue<Entry> rq;
    EXPECT_FALSE(rq.any([](const Entry &) { return true; }));

    rq.push(Entry{10, 0, 0});
    rq.push(Entry{1u << 20, 0, 1}); // high bucket
    (void)rq.top();                 // settle: seq 0 enters ready list
    rq.push(Entry{5, 0, 2});        // below the settled floor
    EXPECT_TRUE(rq.any([](const Entry &e) { return e.seq == 0; }));
    EXPECT_TRUE(rq.any([](const Entry &e) { return e.seq == 1; }));
    EXPECT_TRUE(rq.any([](const Entry &e) { return e.seq == 2; }));
    EXPECT_FALSE(rq.any([](const Entry &e) { return e.seq == 3; }));

    // Side-buffer entry (5) pops first, then 10, then the high bucket.
    EXPECT_EQ(rq.top().seq, 2u);
    rq.pop();
    EXPECT_EQ(rq.top().seq, 0u);
    rq.pop();
    EXPECT_EQ(rq.top().seq, 1u);
    rq.pop();
    EXPECT_TRUE(rq.empty());
}

} // namespace
} // namespace alewife
