/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace alewife {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(7);
    std::array<int, 8> hits{};
    for (int i = 0; i < 4000; ++i)
        ++hits[r.nextBounded(8)];
    for (int h : hits)
        EXPECT_GT(h, 300); // roughly uniform
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngDeath, ZeroBoundPanics)
{
    Rng r(1);
    EXPECT_DEATH(r.nextBounded(0), "nextBounded");
}

} // namespace
} // namespace alewife
