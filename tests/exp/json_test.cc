/**
 * @file
 * Unit tests for the minimal JSON value type.
 */

#include <gtest/gtest.h>

#include "exp/json.hh"

namespace alewife::exp {
namespace {

TEST(Json, ScalarsDumpCompactly)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-3.5).dump(), "-3.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json j = Json::object();
    j.set("b", 1);
    j.set("a", 2);
    j.set("b", 3); // replaces, does not reorder
    EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
}

TEST(Json, StringEscapesRoundTrip)
{
    const std::string nasty = "quote\" back\\slash\nnew\ttab";
    Json j = Json::object();
    j.set("s", nasty);
    std::string err;
    const Json back = Json::parse(j.dump(), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.at("s").asString(), nasty);
}

TEST(Json, DoublesRoundTripBitExactly)
{
    const double values[] = {0.1,     1.0 / 3.0,       6.02214076e23,
                             -1e-300, 123456789.25,    0.0,
                             42.0,    9007199254740991.0};
    for (double v : values) {
        Json j = Json::array();
        j.push(v);
        std::string err;
        const Json back = Json::parse(j.dump(), &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.at(std::size_t{0}).asDouble(), v);
    }
}

TEST(Json, ParsesNestedDocument)
{
    std::string err;
    const Json j = Json::parse(
        R"({"a": [1, 2, {"b": true}], "c": null, "d": "x"})", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.at("a").size(), 3u);
    EXPECT_TRUE(j.at("a").at(2).at("b").asBool());
    EXPECT_TRUE(j.at("c").isNull());
    EXPECT_EQ(j.at("d").asString(), "x");
    EXPECT_FALSE(j.has("missing"));
    EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, PrettyPrintReparses)
{
    Json j = Json::object();
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    j.set("list", std::move(arr));
    std::string err;
    const Json back = Json::parse(j.dump(2), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.at("list").at(1).asString(), "two");
}

TEST(Json, MalformedInputReportsError)
{
    const char *bad[] = {"{",        "[1, 2",      "{\"a\" 1}",
                         "tru",      "\"open",     "[1,]",
                         "{} junk",  "",           "{\"a\":1,}"};
    for (const char *text : bad) {
        std::string err;
        const Json j = Json::parse(text, &err);
        EXPECT_FALSE(err.empty()) << "accepted: " << text;
        EXPECT_TRUE(j.isNull());
    }
}

} // namespace
} // namespace alewife::exp
