/**
 * @file
 * Tests for the parallel sweep engine: ordering, serial/parallel
 * equivalence, cache integration, and progress telemetry.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/stream.hh"
#include "core/experiments.hh"
#include "exp/result_cache.hh"
#include "exp/sweep_engine.hh"

namespace alewife::exp {
namespace {

using core::Mechanism;

core::AppFactory
tinyStream()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    return apps::Stream::factory(p);
}

EngineOptions
withJobs(int n)
{
    EngineOptions o;
    o.jobs = n;
    return o;
}

std::vector<Job>
mechanismJobs(const std::string &appKey = "")
{
    std::vector<Job> jobs;
    for (Mechanism m : core::allMechanisms()) {
        Job j;
        j.app = tinyStream();
        j.spec.mechanism = m;
        j.appKey = appKey;
        jobs.push_back(std::move(j));
    }
    return jobs;
}

void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.mechanism, b.mechanism);
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.volume.total(), b.volume.total());
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected);
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
}

TEST(SweepEngine, ResultsArriveInSubmissionOrder)
{
    SweepEngine engine(withJobs(4));
    const auto results = engine.run(mechanismJobs());
    const auto mechs = core::allMechanisms();
    ASSERT_EQ(results.size(), mechs.size());
    for (std::size_t i = 0; i < mechs.size(); ++i) {
        EXPECT_EQ(results[i].mechanism, mechs[i]);
        EXPECT_TRUE(results[i].verified);
    }
}

TEST(SweepEngine, ParallelMatchesSerialExactly)
{
    SweepEngine serial(withJobs(1));
    SweepEngine parallel(withJobs(4));
    const auto a = serial.run(mechanismJobs());
    const auto b = parallel.run(mechanismJobs());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST(SweepEngine, EffectiveThreadsArbitration)
{
    // Fits: the request is honored.
    EXPECT_EQ(SweepEngine::effectiveThreads(4, 4, 16), 4);
    EXPECT_EQ(SweepEngine::effectiveThreads(1, 8, 8), 8);
    // Oversubscribed: threads downscale toward hw / jobs, never jobs.
    EXPECT_EQ(SweepEngine::effectiveThreads(4, 4, 8), 2);
    EXPECT_EQ(SweepEngine::effectiveThreads(4, 4, 4), 1);
    EXPECT_EQ(SweepEngine::effectiveThreads(2, 3, 4), 2);
    EXPECT_EQ(SweepEngine::effectiveThreads(8, 2, 1), 1);
    // Unknown hardware (hw == 0) keeps the request.
    EXPECT_EQ(SweepEngine::effectiveThreads(4, 4, 0), 4);
    // threads == 1 is always 1, whatever the host looks like.
    EXPECT_EQ(SweepEngine::effectiveThreads(64, 1, 1), 1);
    // Degenerate inputs clamp instead of dividing by zero.
    EXPECT_EQ(SweepEngine::effectiveThreads(0, 0, 4), 1);
}

TEST(SweepEngine, IntraRunThreadsPreserveResults)
{
    // jobs x threads composition end-to-end: whatever thread count the
    // host arbitration lands on (including a downscale to 1 on small
    // hosts), batch results must equal the all-serial baseline.
    SweepEngine serial(withJobs(1));
    EngineOptions opts = withJobs(2);
    opts.threads = 4;
    SweepEngine composed(opts);
    const auto a = serial.run(mechanismJobs());
    const auto b = composed.run(mechanismJobs());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST(SweepEngine, EmptyBatchIsFine)
{
    int hookCalls = 0;
    EngineOptions opts;
    opts.onProgress = [&](const Progress &) { ++hookCalls; };
    SweepEngine engine(opts);
    EXPECT_TRUE(engine.run({}).empty());
    EXPECT_EQ(engine.progress().queued, 0);
    EXPECT_EQ(engine.progress().done, 0);
    EXPECT_EQ(hookCalls, 1);
}

TEST(SweepEngine, ProgressCountsEveryJob)
{
    std::vector<Progress> snapshots;
    EngineOptions opts;
    opts.jobs = 4;
    opts.onProgress = [&](const Progress &p) {
        snapshots.push_back(p);
    };
    SweepEngine engine(opts);
    engine.run(mechanismJobs());

    ASSERT_EQ(snapshots.size(), core::allMechanisms().size());
    const Progress &last = engine.progress();
    EXPECT_EQ(last.queued, 5);
    EXPECT_EQ(last.done, 5);
    EXPECT_EQ(last.running, 0);
    EXPECT_EQ(last.cacheHits, 0);
    EXPECT_GT(last.simEvents, 0u);
    EXPECT_GE(last.elapsedSec, 0.0);
    // done is monotone in hook order (the hook is serialized).
    for (std::size_t i = 1; i < snapshots.size(); ++i)
        EXPECT_GT(snapshots[i].done, snapshots[i - 1].done);
}

TEST(SweepEngine, WarmCacheSkipsEverySimulation)
{
    ResultCache cache;
    EngineOptions opts;
    opts.jobs = 2;
    opts.cache = &cache;

    SweepEngine engine(opts);
    const auto cold = engine.run(mechanismJobs("stream/t=1"));
    EXPECT_EQ(engine.progress().cacheHits, 0);
    EXPECT_EQ(cache.size(), core::allMechanisms().size());

    const auto warm = engine.run(mechanismJobs("stream/t=1"));
    EXPECT_EQ(engine.progress().cacheHits, 5);
    EXPECT_EQ(engine.progress().done, 5);
    // Cache hits execute zero simulated events.
    EXPECT_EQ(engine.progress().simEvents, 0u);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
        expectIdentical(cold[i], warm[i]);
}

TEST(SweepEngine, UncachedJobsRunEvenWithCacheConfigured)
{
    ResultCache cache;
    EngineOptions opts;
    opts.cache = &cache;
    SweepEngine engine(opts);
    engine.run(mechanismJobs("")); // empty appKey: never cached
    engine.run(mechanismJobs(""));
    EXPECT_EQ(engine.progress().cacheHits, 0);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(Experiments, SweepThroughEngineMatchesLegacySerial)
{
    // runAllMechanisms with default options (serial) and with a
    // 4-thread engine must agree bit-for-bit.
    const MachineConfig base;
    const std::vector<Mechanism> mechs{Mechanism::SharedMemory,
                                       Mechanism::MpInterrupt,
                                       Mechanism::BulkTransfer};
    const auto serial = core::runAllMechanisms(tinyStream(), base, mechs);
    const auto parallel = core::runAllMechanisms(
        tinyStream(), base, mechs, withJobs(4));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(Experiments, BisectionSweepThroughEngineKeepsShape)
{
    const MachineConfig base;
    ResultCache cache;
    EngineOptions opts;
    opts.jobs = 3;
    opts.cache = &cache;
    opts.appKey = "stream/t=1";
    const auto series = core::bisectionSweep(
        tinyStream(), base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt}, {18.0, 9.0},
        64, opts);
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0].mech, Mechanism::SharedMemory);
    ASSERT_EQ(series[0].points.size(), 2u);
    EXPECT_EQ(series[0].points[0].x, 18.0);
    EXPECT_EQ(series[0].points[1].x, 9.0);
    EXPECT_EQ(cache.size(), 4u);

    // Warm rerun: identical series, all four runs skipped.
    const auto again = core::bisectionSweep(
        tinyStream(), base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt}, {18.0, 9.0},
        64, opts);
    EXPECT_EQ(cache.hits(), 4u);
    for (std::size_t s = 0; s < series.size(); ++s)
        for (std::size_t i = 0; i < series[s].points.size(); ++i)
            expectIdentical(series[s].points[i].result,
                            again[s].points[i].result);
}

TEST(Experiments, IdealLatencySweepThroughEngineKeepsMpFlat)
{
    const MachineConfig base;
    const auto series = core::idealLatencySweep(
        tinyStream(), base,
        {Mechanism::SharedMemory, Mechanism::MpInterrupt},
        {20.0, 200.0}, withJobs(4));
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[1].points[0].result.runtimeCycles,
                     series[1].points[1].result.runtimeCycles);
}

} // namespace
} // namespace alewife::exp
