/**
 * @file
 * Tests for structured result emission: JSON round trip, schema
 * versioning, and CSV shape.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/stream.hh"
#include "core/experiments.hh"
#include "exp/serialize.hh"

namespace alewife::exp {
namespace {

core::RunResult
sampleResult()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    core::RunSpec spec;
    spec.mechanism = core::Mechanism::MpInterrupt;
    return core::runApp(apps::Stream::factory(p), spec);
}

TEST(Serialize, ResultRoundTripsBitExactly)
{
    const core::RunResult r = sampleResult();
    std::string err;
    const Json j = Json::parse(resultToJson(r).dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    const core::RunResult back = resultFromJson(j);

    EXPECT_EQ(back.app, r.app);
    EXPECT_EQ(back.mechanism, r.mechanism);
    EXPECT_EQ(back.runtimeCycles, r.runtimeCycles);
    EXPECT_EQ(back.checksum, r.checksum);
    EXPECT_EQ(back.reference, r.reference);
    EXPECT_EQ(back.verified, r.verified);
    EXPECT_EQ(back.simEvents, r.simEvents);
    for (std::size_t i = 0; i < r.breakdown.ticks.size(); ++i)
        EXPECT_EQ(back.breakdown.ticks[i], r.breakdown.ticks[i]);
    for (std::size_t i = 0; i < r.volume.bytes.size(); ++i)
        EXPECT_EQ(back.volume.bytes[i], r.volume.bytes[i]);
    EXPECT_EQ(back.counters.packetsInjected,
              r.counters.packetsInjected);
    EXPECT_EQ(back.counters.cacheHits, r.counters.cacheHits);
    EXPECT_EQ(back.counters.interruptsTaken,
              r.counters.interruptsTaken);
    EXPECT_EQ(back.counters.niQueueFullStalls,
              r.counters.niQueueFullStalls);
}

TEST(Serialize, BatchCarriesSchemaHeader)
{
    const Json j = batchToJson("stream", {sampleResult()});
    EXPECT_EQ(j.at("schema").asString(), "alewife-results");
    EXPECT_EQ(static_cast<int>(j.at("version").asDouble()),
              kResultSchemaVersion);
    EXPECT_EQ(j.at("kind").asString(), "batch");
    EXPECT_EQ(j.at("results").size(), 1u);
}

TEST(Serialize, SeriesJsonHasOneEntryPerMechanismAndPoint)
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    const auto series = core::bisectionSweep(
        apps::Stream::factory(p), MachineConfig{},
        {core::Mechanism::SharedMemory, core::Mechanism::MpInterrupt},
        {18.0, 9.0});
    const Json j = seriesToJson("t", "bisection", series);
    EXPECT_EQ(j.at("kind").asString(), "sweep");
    ASSERT_EQ(j.at("series").size(), 2u);
    const Json &first = j.at("series").at(std::size_t{0});
    EXPECT_EQ(first.at("mechanism").asString(), "SM");
    ASSERT_EQ(first.at("points").size(), 2u);
    EXPECT_EQ(first.at("points").at(std::size_t{0}).at("x").asDouble(),
              18.0);
}

TEST(Serialize, CsvHasHeaderAndOneRowPerResult)
{
    std::ostringstream os;
    writeBatchCsv(os, {sampleResult(), sampleResult()});
    const std::string text = os.str();
    int lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 3); // header + 2 rows
    EXPECT_NE(text.find("app,mechanism,runtimeCycles"),
              std::string::npos);
    EXPECT_NE(text.find("stream,MP-I"), std::string::npos);
    EXPECT_NE(text.find("cycles:compute"), std::string::npos);
    EXPECT_NE(text.find("bytes:data"), std::string::npos);
}

} // namespace
} // namespace alewife::exp
