/**
 * @file
 * Tests for the distributed sweep farm: the work-queue protocol
 * (claim/heartbeat/complete/fail/reap), every FARM_FAULT recovery
 * path, and the coordinator's materialize/drain/collect cycle —
 * including the bit-identity guarantee against a local run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "exp/farm.hh"
#include "exp/queue.hh"
#include "exp/result_cache.hh"
#include "exp/serialize.hh"
#include "exp/sweep_engine.hh"

namespace alewife::exp {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        static int n = 0;
        path = fs::temp_directory_path()
               / ("alewife-farm-test-" + std::to_string(::getpid())
                  + "-" + std::to_string(n++));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    std::string str() const { return path.string(); }
};

/** Millisecond knobs scaled down so protocol tests run in ~no time. */
FarmTuning
fastTuning()
{
    FarmTuning t;
    t.leaseTtlMs = 200;
    t.heartbeatMs = 40;
    t.pollMs = 10;
    t.backoffBaseMs = 10;
    t.retryBudget = 2;
    return t;
}

/** The test workload: the smallest stream run (16 values, 4 iters). */
FarmWorkload
streamWorkload()
{
    FarmWorkload w;
    w.app = "stream";
    w.scale = 0.25;
    return w;
}

FarmJob
makeJob(int id, core::Mechanism mech,
        const FarmWorkload &w = streamWorkload())
{
    FarmJob job;
    job.id = id;
    job.workload = w;
    job.appKey = w.appKey();
    job.spec.mechanism = mech;
    return job;
}

core::RunResult
localRun(const FarmJob &job)
{
    auto factory = makeWorkloadFactory(job.workload);
    return core::runApp(factory, job.spec);
}

WorkQueue
makeQueue(const TempDir &tmp, const std::string &worker,
          FarmTuning tuning = fastTuning())
{
    WorkQueue q(tmp.str(), worker, tuning);
    EXPECT_TRUE(q.initDirs());
    return q;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

TEST(FarmWorkload, AppKeyMatchesSweepCliFormat)
{
    EXPECT_EQ(streamWorkload().appKey(), "stream/scale=0.25");

    FarmWorkload g;
    g.app = "bfs";
    g.graph = "rmat";
    EXPECT_EQ(g.appKey(), "bfs/scale=1/graph=rmat");

    // Non-graph apps ignore the graph family, like sweep_cli does.
    FarmWorkload s = streamWorkload();
    s.graph = "rmat";
    EXPECT_EQ(s.appKey(), "stream/scale=0.25");

    EXPECT_EQ(FarmWorkload{}.appKey(), "");
}

TEST(FarmJobJson, RoundTripPreservesCacheKey)
{
    FarmJob job = makeJob(7, core::Mechanism::MpPolling);
    job.spec.machine.procMhz = 40.0;
    job.spec.machine.idealNet = true;
    job.spec.machine.idealNetLatencyCycles = 123.0;
    job.spec.machine.threeHopForwarding =
        !job.spec.machine.threeHopForwarding;
    job.spec.crossTraffic.bytesPerCycle = 4.5;
    job.spec.crossTraffic.messageBytes = 96;
    job.attempts = 2;
    job.notBeforeMs = 123456789;
    job.lastError = "lease expired";

    std::string err;
    auto back = farmJobFromJson(farmJobToJson(job), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->id, job.id);
    EXPECT_EQ(back->appKey, job.appKey);
    EXPECT_EQ(back->workload.app, job.workload.app);
    EXPECT_EQ(back->workload.scale, job.workload.scale);
    EXPECT_EQ(back->attempts, job.attempts);
    EXPECT_EQ(back->notBeforeMs, job.notBeforeMs);
    EXPECT_EQ(back->lastError, job.lastError);

    // The whole point of the round trip: the reconstructed spec maps
    // to the same cache entry, machine canonical key included.
    EXPECT_EQ(ResultCache::key(back->spec, back->appKey),
              ResultCache::key(job.spec, job.appKey));
    EXPECT_EQ(back->spec.machine.canonicalKey(),
              job.spec.machine.canonicalKey());
}

TEST(FarmJobJson, MalformedDocumentsAreRejectedNotFatal)
{
    std::string err;

    Json notOurs = farmJobToJson(makeJob(0, core::Mechanism::SharedMemory));
    notOurs.set("schema", "something-else");
    EXPECT_FALSE(farmJobFromJson(notOurs, &err).has_value());
    EXPECT_NE(err.find("schema"), std::string::npos);

    Json badMech = farmJobToJson(makeJob(0, core::Mechanism::SharedMemory));
    Json badSpec = badMech.at("spec");
    badSpec.set("mechanism", "WARP-DRIVE");
    badMech.set("spec", std::move(badSpec));
    EXPECT_FALSE(farmJobFromJson(badMech, &err).has_value());
    EXPECT_NE(err.find("WARP-DRIVE"), std::string::npos);

    Json noWorkload = Json::object();
    noWorkload.set("schema", kFarmJobSchema);
    noWorkload.set("version", kFarmSchemaVersion);
    noWorkload.set("id", 1);
    noWorkload.set("appKey", "x");
    EXPECT_FALSE(farmJobFromJson(noWorkload, &err).has_value());

    Json typed = farmJobToJson(makeJob(0, core::Mechanism::SharedMemory));
    typed.set("id", "one");
    EXPECT_FALSE(farmJobFromJson(typed, &err).has_value());
}

TEST(FarmJobJson, SnapshotFileNameIsStableAndSensitive)
{
    const FarmJob a = makeJob(3, core::Mechanism::SharedMemory);
    const std::string name = jobSnapshotFile(a.id, a.appKey, a.spec);
    EXPECT_EQ(name, jobSnapshotFile(a.id, a.appKey, a.spec));
    EXPECT_NE(name.find("-latest.ckpt.json"), std::string::npos);

    EXPECT_NE(name, jobSnapshotFile(4, a.appKey, a.spec));
    EXPECT_NE(name, jobSnapshotFile(a.id, "other/scale=1", a.spec));
    core::RunSpec other = a.spec;
    other.mechanism = core::Mechanism::MpPolling;
    EXPECT_NE(name, jobSnapshotFile(a.id, a.appKey, other));
}

// ---------------------------------------------------------------------
// Queue protocol
// ---------------------------------------------------------------------

TEST(WorkQueueTest, ClaimTakesLowestIdAndHoldsALease)
{
    TempDir tmp;
    WorkQueue q = makeQueue(tmp, "w1");
    for (int id : {2, 0, 1})
        ASSERT_TRUE(q.enqueue(makeJob(id, core::Mechanism::SharedMemory)));
    EXPECT_EQ(q.counts().pending, 3);

    auto job = q.claim(1000);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->id, 0);
    EXPECT_EQ(q.counts().pending, 2);
    EXPECT_EQ(q.counts().leased, 1);
    EXPECT_TRUE(fs::exists(tmp.path / "leases" / "000000.json"));
    EXPECT_EQ(q.countEvents("claim"), 1u);

    EXPECT_TRUE(q.complete(*job, 1001));
    EXPECT_EQ(q.counts().done, 1);
    EXPECT_FALSE(fs::exists(tmp.path / "leases" / "000000.json"));
    EXPECT_EQ(q.completions(), 1u);
}

TEST(WorkQueueTest, TwoWorkersNeverClaimTheSameJob)
{
    TempDir tmp;
    WorkQueue a = makeQueue(tmp, "wa");
    WorkQueue b(tmp.str(), "wb", fastTuning());
    for (int id : {0, 1})
        ASSERT_TRUE(a.enqueue(makeJob(id, core::Mechanism::SharedMemory)));

    auto ja = a.claim(1000);
    auto jb = b.claim(1000);
    ASSERT_TRUE(ja.has_value());
    ASSERT_TRUE(jb.has_value());
    EXPECT_NE(ja->id, jb->id);
    EXPECT_FALSE(a.claim(1000).has_value());
}

TEST(WorkQueueTest, FailBacksOffExponentiallyThenPoisons)
{
    TempDir tmp;
    FarmTuning t = fastTuning();
    t.retryBudget = 1;
    t.backoffBaseMs = 100;
    WorkQueue q(tmp.str(), "w1", t);
    ASSERT_TRUE(q.initDirs());
    ASSERT_TRUE(q.enqueue(makeJob(0, core::Mechanism::SharedMemory)));

    auto job = q.claim(1000);
    ASSERT_TRUE(job.has_value());
    q.fail(*job, "boom", 1000);

    // Re-queued with attempts=1, not claimable until the backoff ends.
    auto entry = q.readEntry("pending", 0);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->attempts, 1);
    EXPECT_EQ(entry->notBeforeMs, 1100);
    EXPECT_EQ(entry->lastError, "boom");
    EXPECT_FALSE(q.claim(1050).has_value());

    auto retry = q.claim(1101);
    ASSERT_TRUE(retry.has_value());
    q.fail(*retry, "boom again", 1101);

    // Budget (1 retry) exhausted: quarantined with the last error.
    EXPECT_EQ(q.counts().poisoned, 1);
    EXPECT_EQ(q.counts().pending, 0);
    EXPECT_EQ(q.counts().leased, 0);
    auto poisoned = q.readEntry("poison", 0);
    ASSERT_TRUE(poisoned.has_value());
    EXPECT_EQ(poisoned->attempts, 2);
    EXPECT_EQ(poisoned->lastError, "boom again");
}

TEST(WorkQueueTest, ReapReclaimsStaleLeaseAndLateCompletionIsDropped)
{
    TempDir tmp;
    WorkQueue a = makeQueue(tmp, "wa"); // ttl 200ms
    ASSERT_TRUE(a.enqueue(makeJob(0, core::Mechanism::SharedMemory)));
    auto job = a.claim(1000);
    ASSERT_TRUE(job.has_value());

    // Heartbeats keep the lease alive past the TTL...
    a.heartbeat(0, 1150);
    EXPECT_EQ(a.reapExpired(1300).leaseExpiries, 0u);

    // ...but once they stop, the reaper re-queues the job.
    const ReapStats stats = a.reapExpired(1151 + 201);
    EXPECT_EQ(stats.leaseExpiries, 1u);
    EXPECT_EQ(stats.reclaims, 1u);
    EXPECT_EQ(stats.quarantines, 0u);
    auto entry = a.readEntry("pending", 0);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->attempts, 1);
    EXPECT_NE(entry->lastError.find("lease expired"),
              std::string::npos);

    // Another worker claims the reclaimed job; the original holder's
    // completion is now late and must not move the entry.
    WorkQueue b(tmp.str(), "wb", fastTuning());
    auto retry = b.claim(entry->notBeforeMs + 1);
    ASSERT_TRUE(retry.has_value());
    EXPECT_FALSE(a.complete(*job, 9999));
    EXPECT_EQ(a.lateCompletions(), 1u);
    EXPECT_EQ(a.counts().leased, 1);
    EXPECT_TRUE(b.complete(*retry, 9999));
    EXPECT_EQ(b.counts().done, 1);
}

TEST(WorkQueueTest, UnreadableEntryIsQuarantinedByTheReaper)
{
    TempDir tmp;
    WorkQueue q = makeQueue(tmp, "w1");
    std::ofstream(tmp.path / "pending" / "000005.json") << "{ torn";

    const ReapStats stats = q.reapExpired(1000);
    EXPECT_EQ(stats.quarantines, 1u);
    EXPECT_EQ(q.counts().pending, 0);
    EXPECT_EQ(q.counts().poisoned, 1);
}

// ---------------------------------------------------------------------
// Fault injection: every FARM_FAULT recovery path
// ---------------------------------------------------------------------

TEST(FarmFaultTest, NamesRoundTrip)
{
    for (FarmFault f :
         {FarmFault::DropLease, FarmFault::StallHeartbeat,
          FarmFault::CorruptResult, FarmFault::KillAfterClaim})
        EXPECT_STRNE(farmFaultName(f), "");
    EXPECT_STREQ(farmFaultName(FarmFault::None), "");
}

TEST(FarmFaultTest, DropLeaseIsReclaimedImmediately)
{
    TempDir tmp;
    FarmTuning t = fastTuning();
    t.fault = FarmFault::DropLease;
    WorkQueue q(tmp.str(), "wf", t);
    ASSERT_TRUE(q.initDirs());
    ASSERT_TRUE(q.enqueue(makeJob(0, core::Mechanism::SharedMemory)));

    auto job = q.claim(1000);
    ASSERT_TRUE(job.has_value());
    EXPECT_FALSE(fs::exists(tmp.path / "leases" / "000000.json"));

    // No lease at all means no TTL grace: reclaimed on the next pass.
    const ReapStats stats = q.reapExpired(1001);
    EXPECT_EQ(stats.leaseExpiries, 1u);
    EXPECT_EQ(stats.reclaims, 1u);
    auto entry = q.readEntry("pending", 0);
    ASSERT_TRUE(entry.has_value());
    EXPECT_NE(entry->lastError.find("lease lost"), std::string::npos);
}

TEST(FarmFaultTest, StallHeartbeatExpiresDespiteRenewalCalls)
{
    TempDir tmp;
    FarmTuning t = fastTuning();
    t.fault = FarmFault::StallHeartbeat;
    WorkQueue q(tmp.str(), "wf", t);
    ASSERT_TRUE(q.initDirs());
    ASSERT_TRUE(q.enqueue(makeJob(0, core::Mechanism::SharedMemory)));

    auto job = q.claim(1000);
    ASSERT_TRUE(job.has_value());
    q.heartbeat(0, 1150); // swallowed by the fault
    q.heartbeat(0, 1350); // swallowed by the fault

    // The lease still carries the claim-time heartbeat, so it expires.
    const ReapStats stats = q.reapExpired(1000 + 201);
    EXPECT_EQ(stats.leaseExpiries, 1u);
    EXPECT_EQ(stats.reclaims, 1u);
}

TEST(FarmFaultDeathTest, KillAfterClaimDiesWithLeaseHeld)
{
    TempDir tmp;
    {
        WorkQueue setup = makeQueue(tmp, "setup");
        ASSERT_TRUE(
            setup.enqueue(makeJob(0, core::Mechanism::SharedMemory)));
    }

    FarmTuning t = fastTuning();
    t.fault = FarmFault::KillAfterClaim;
    EXPECT_EXIT(
        {
            WorkQueue victim(tmp.str(), "victim", t);
            victim.claim(1000);
        },
        ::testing::ExitedWithCode(9), "");

    // The dead worker left the job stranded in leased/ with its lease
    // intact — exactly what a kill -9 leaves — and the reaper recovers
    // it once the TTL passes.
    WorkQueue coord(tmp.str(), "coord", fastTuning());
    EXPECT_EQ(coord.counts().leased, 1);
    const ReapStats stats = coord.reapExpired(farmNowMs() + 100'000);
    EXPECT_EQ(stats.leaseExpiries, 1u);
    EXPECT_EQ(stats.reclaims, 1u);
    EXPECT_EQ(coord.counts().pending, 1);
}

TEST(FarmFaultTest, CorruptResultIsQuarantinedAndRecomputed)
{
    TempDir tmp;
    FarmOptions fo;
    fo.dir = tmp.str();
    fo.tuning = fastTuning();
    fo.workers = 0; // the faulty external worker does all the work
    FarmCoordinator coord(fo);
    const std::vector<FarmJob> jobs = {
        makeJob(0, core::Mechanism::SharedMemory)};
    ASSERT_TRUE(coord.materialize(jobs));

    FarmWorker::Options wo;
    wo.farmDir = tmp.str();
    wo.workerId = "faulty";
    wo.cacheDir = coord.options().cacheDir;
    wo.ckptDir = coord.options().ckptDir;
    wo.tuning = fastTuning();
    wo.tuning.fault = FarmFault::CorruptResult;
    FarmWorker worker(wo);
    EXPECT_EQ(worker.runLoop(), 1);

    // The worker completed the job but tore its cache entry in half.
    coord.runUntilDrained(); // returns immediately: all jobs done
    const auto results = coord.collect();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(coord.report().recomputes, 1u);
    EXPECT_TRUE(coord.report().quarantined.empty());
    EXPECT_EQ(resultToJson(results[0]).dump(0),
              resultToJson(localRun(jobs[0])).dump(0));

    // The torn entry was quarantined to *.bad, not deleted silently.
    int bad = 0;
    for (const auto &e :
         fs::directory_iterator(coord.options().cacheDir))
        bad += e.path().extension() == ".bad";
    EXPECT_EQ(bad, 1);
}

// ---------------------------------------------------------------------
// Coordinator end to end
// ---------------------------------------------------------------------

TEST(FarmCoordinatorTest, CampaignIsBitIdenticalToLocalRuns)
{
    TempDir tmp;
    FarmOptions fo;
    fo.dir = tmp.str();
    fo.tuning = fastTuning();
    fo.workers = 2;
    FarmCoordinator coord(fo);

    std::vector<FarmJob> jobs;
    jobs.push_back(makeJob(0, core::Mechanism::SharedMemory));
    jobs.push_back(makeJob(1, core::Mechanism::MpInterrupt));
    jobs.push_back(makeJob(2, core::Mechanism::MpPolling));

    const auto farmed = coord.runCampaign(jobs);
    ASSERT_EQ(farmed.size(), jobs.size());
    EXPECT_TRUE(coord.report().farmed);
    EXPECT_TRUE(coord.report().quarantined.empty());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(resultToJson(farmed[i]).dump(0),
                  resultToJson(localRun(jobs[i])).dump(0))
            << "job " << i;

    // The status JSON accounts for every job.
    const Json status = readFarmStatus(tmp.str());
    ASSERT_TRUE(status.isObject());
    EXPECT_EQ(status.at("schema").asString(), kFarmStatusSchema);
    EXPECT_EQ(status.at("counts").at("done").asDouble(), 3.0);
    EXPECT_EQ(status.at("counts").at("pending").asDouble(), 0.0);
    EXPECT_GE(status.at("counters").at("claims").asDouble(), 3.0);
    EXPECT_GE(status.at("counters").at("completions").asDouble(), 3.0);
}

TEST(FarmCoordinatorTest, UnknownAppIsPoisonedAndReported)
{
    TempDir tmp;
    FarmOptions fo;
    fo.dir = tmp.str();
    fo.tuning = fastTuning();
    fo.tuning.retryBudget = 0; // poison on the first failure
    fo.workers = 1;
    FarmCoordinator coord(fo);

    FarmWorkload bad;
    bad.app = "does-not-exist";
    std::vector<FarmJob> jobs;
    jobs.push_back(makeJob(0, core::Mechanism::SharedMemory));
    jobs.push_back(makeJob(1, core::Mechanism::SharedMemory, bad));

    const auto results = coord.runCampaign(jobs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].verified);
    EXPECT_FALSE(results[1].verified); // placeholder

    ASSERT_EQ(coord.report().quarantined.size(), 1u);
    const QuarantinedJob &q = coord.report().quarantined[0];
    EXPECT_EQ(q.id, 1);
    EXPECT_NE(q.error.find("unknown app"), std::string::npos);

    const Json status = coord.statusJson();
    ASSERT_EQ(status.at("quarantined").size(), 1u);
    EXPECT_EQ(status.at("counters").at("quarantines").asDouble(), 1.0);
}

TEST(FarmCoordinatorTest, PoisonedJobWithCachedResultIsRescued)
{
    TempDir tmp;
    FarmOptions fo;
    fo.dir = tmp.str();
    fo.tuning = fastTuning();
    fo.tuning.retryBudget = 0;
    fo.workers = 0;
    FarmCoordinator coord(fo);
    const std::vector<FarmJob> jobs = {
        makeJob(0, core::Mechanism::SharedMemory)};
    ASSERT_TRUE(coord.materialize(jobs));

    // The job fails into poison/, but a straggler worker still lands
    // the (deterministic) result in the shared cache afterwards.
    WorkQueue w(tmp.str(), "w1", fo.tuning);
    auto job = w.claim(farmNowMs());
    ASSERT_TRUE(job.has_value());
    w.fail(*job, "simulated crash", farmNowMs());
    ASSERT_EQ(w.counts().poisoned, 1);

    ResultCache cache(coord.options().cacheDir);
    const core::RunResult straggler = localRun(jobs[0]);
    cache.store(ResultCache::key(jobs[0].spec, jobs[0].appKey),
                straggler);

    coord.runUntilDrained(); // done+poisoned covers the campaign
    const auto results = coord.collect();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(coord.report().quarantined.empty());
    EXPECT_EQ(coord.report().rescued, 1u);
    EXPECT_EQ(resultToJson(results[0]).dump(0),
              resultToJson(straggler).dump(0));
}

TEST(FarmCoordinatorTest, OrphanSnapshotsAreDeletedAtMaterialize)
{
    TempDir tmp;
    FarmOptions fo;
    fo.dir = tmp.str();
    fo.tuning = fastTuning();
    fo.workers = 1;
    FarmCoordinator coord(fo);
    const std::vector<FarmJob> jobs = {
        makeJob(0, core::Mechanism::SharedMemory)};

    const fs::path ckpt(coord.options().ckptDir);
    fs::create_directories(ckpt);
    const std::string live =
        jobSnapshotFile(jobs[0].id, jobs[0].appKey, jobs[0].spec);
    std::ofstream(ckpt / live) << "{}";
    std::ofstream(ckpt / "deadbeefdeadbeef-latest.ckpt.json") << "{}";
    std::ofstream(ckpt / "unrelated.txt") << "keep me";

    ASSERT_TRUE(coord.materialize(jobs));
    EXPECT_EQ(coord.report().orphanSnapshotsDeleted, 1u);
    EXPECT_TRUE(fs::exists(ckpt / live));
    EXPECT_FALSE(
        fs::exists(ckpt / "deadbeefdeadbeef-latest.ckpt.json"));
    EXPECT_TRUE(fs::exists(ckpt / "unrelated.txt"));
}

TEST(FarmCoordinatorTest, MaterializeFailureFallsBackToLocalRuns)
{
    // A farm directory that cannot be created (its parent is a regular
    // file — even root cannot mkdir under it) must not lose the batch.
    TempDir tmp;
    std::ofstream(tmp.path / "blocker") << "not a directory";
    FarmOptions fo;
    fo.dir = (tmp.path / "blocker" / "farm").string();
    fo.tuning = fastTuning();
    FarmCoordinator coord(fo);

    const std::vector<FarmJob> jobs = {
        makeJob(0, core::Mechanism::SharedMemory)};
    const auto results = coord.runCampaign(jobs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(coord.report().farmed);
    EXPECT_EQ(coord.report().recomputes, 1u);
    EXPECT_EQ(resultToJson(results[0]).dump(0),
              resultToJson(localRun(jobs[0])).dump(0));
}

TEST(FarmWorkerTest, VanishedQueueDirectoryDegradesCleanly)
{
    TempDir tmp;
    const fs::path farm = tmp.path / "farm";
    {
        WorkQueue q(farm.string(), "setup", fastTuning());
        ASSERT_TRUE(q.initDirs());
    }
    FarmWorker::Options wo;
    wo.farmDir = farm.string();
    wo.workerId = "lost";
    wo.cacheDir = (tmp.path / "cache").string();
    wo.tuning = fastTuning();
    FarmWorker worker(wo);

    fs::remove_all(farm); // the NFS blip / rm -rf moment
    EXPECT_EQ(worker.runLoop(), 0);
    EXPECT_TRUE(worker.degraded());
}

TEST(FarmWorkerTest, RestartedCoordinatorSkipsMaterializedJobs)
{
    TempDir tmp;
    FarmOptions fo;
    fo.dir = tmp.str();
    fo.tuning = fastTuning();
    fo.workers = 1;
    std::vector<FarmJob> jobs;
    jobs.push_back(makeJob(0, core::Mechanism::SharedMemory));
    jobs.push_back(makeJob(1, core::Mechanism::MpPolling));

    {
        FarmCoordinator first(fo);
        const auto results = first.runCampaign(jobs);
        ASSERT_EQ(results.size(), 2u);
    }

    // A second coordinator over the same directory finds both jobs in
    // done/ and collects pure cache hits — no re-simulation, and the
    // already-done entries are not re-enqueued.
    FarmCoordinator second(fo);
    const auto results = second.runCampaign(jobs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(second.report().recomputes, 0u);
    WorkQueue census(tmp.str(), "census", fo.tuning);
    EXPECT_EQ(census.counts().done, 2);
    EXPECT_EQ(census.counts().pending, 0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(resultToJson(results[i]).dump(0),
                  resultToJson(localRun(jobs[i])).dump(0));
}

// ---------------------------------------------------------------------
// SweepEngine integration
// ---------------------------------------------------------------------

TEST(SweepEngineFarmTest, FarmedBatchMatchesInProcessBatch)
{
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    auto factory = makeWorkloadFactory(w);
    ASSERT_TRUE(factory);

    std::vector<Job> batch;
    for (core::Mechanism m : {core::Mechanism::SharedMemory,
                              core::Mechanism::MpInterrupt}) {
        Job j;
        j.app = factory;
        j.spec.mechanism = m;
        j.appKey = w.appKey();
        batch.push_back(std::move(j));
    }

    SweepEngine local;
    const auto expected = local.run(batch);

    EngineOptions fo;
    fo.farmDir = (tmp.path / "farm").string();
    fo.workload = w;
    fo.farm = fastTuning();
    fo.jobs = 2;
    FarmReport report;
    fo.farmReport = &report;
    SweepEngine farmed(fo);
    const auto got = farmed.run(batch);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(resultToJson(got[i]).dump(0),
                  resultToJson(expected[i]).dump(0))
            << "job " << i;
    EXPECT_TRUE(report.farmed);
    EXPECT_TRUE(report.quarantined.empty());
}

TEST(SweepEngineFarmTest, ObservedBatchRejectsTheFarmDir)
{
    // Farm workers run obs-detached; combining a farm campaign with
    // observability sinks is a hard configuration error, not a
    // silent in-process fallback (the per-run files the caller asked
    // for would otherwise just not exist on the workers).
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    auto factory = makeWorkloadFactory(w);

    std::vector<Job> batch(1);
    batch[0].app = factory;
    batch[0].spec.mechanism = core::Mechanism::SharedMemory;
    batch[0].appKey = w.appKey();

    EngineOptions fo;
    fo.farmDir = (tmp.path / "farm").string();
    fo.workload = w;
    fo.obs.metricsOut = (tmp.path / "met.json").string();
    SweepEngine engine(fo);
    EXPECT_DEATH(engine.run(batch), "obs-detached");
}

TEST(SweepEngineFarmTest, UnfarmableBatchFallsBackInProcess)
{
    // No FarmWorkload: the engine cannot serialize the jobs and must
    // run them in-process with a warning, not fail or misbehave.
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    auto factory = makeWorkloadFactory(w);

    std::vector<Job> batch(1);
    batch[0].app = factory;
    batch[0].spec.mechanism = core::Mechanism::SharedMemory;
    batch[0].appKey = w.appKey();

    EngineOptions fo;
    fo.farmDir = (tmp.path / "farm").string();
    // fo.workload left empty on purpose
    FarmReport report;
    fo.farmReport = &report;
    SweepEngine engine(fo);
    const auto got = engine.run(batch);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_TRUE(got[0].verified);
    EXPECT_FALSE(report.farmed);
    // Nothing was materialized under the farm directory.
    EXPECT_FALSE(fs::exists(tmp.path / "farm" / "pending"));
}

} // namespace
} // namespace alewife::exp
