/**
 * @file
 * Determinism regression for concurrent simulations: the same RunSpec
 * must produce bit-identical results run serially, run twice, and run
 * through the parallel engine with jobs=4 — while other simulations
 * execute concurrently on sibling worker threads. Any divergence means
 * hidden shared mutable state between Machine instances.
 */

#include <gtest/gtest.h>

#include "apps/em3d.hh"
#include "core/runner.hh"
#include "exp/sweep_engine.hh"

namespace alewife::exp {
namespace {

using core::Mechanism;

core::AppFactory
smallEm3d()
{
    apps::Em3d::Params p;
    p.graph.nodesPerSide = 320;
    p.graph.degree = 5;
    p.iters = 2;
    return apps::Em3d::factory(p);
}

EngineOptions
withJobs(int n)
{
    EngineOptions o;
    o.jobs = n;
    return o;
}

core::RunSpec
spec(Mechanism m, double cross = 0.0)
{
    core::RunSpec s;
    s.mechanism = m;
    s.crossTraffic.bytesPerCycle = cross;
    return s;
}

void
expectBitIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.reference, b.reference);
    EXPECT_EQ(a.simEvents, b.simEvents);
    for (std::size_t i = 0; i < a.breakdown.ticks.size(); ++i)
        EXPECT_EQ(a.breakdown.ticks[i], b.breakdown.ticks[i]);
    for (std::size_t i = 0; i < a.volume.bytes.size(); ++i)
        EXPECT_EQ(a.volume.bytes[i], b.volume.bytes[i]);
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected);
    EXPECT_EQ(a.counters.packetsDelivered, b.counters.packetsDelivered);
    EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
    EXPECT_EQ(a.counters.cacheMisses, b.counters.cacheMisses);
    EXPECT_EQ(a.counters.remoteMisses, b.counters.remoteMisses);
    EXPECT_EQ(a.counters.invalidationsSent,
              b.counters.invalidationsSent);
    EXPECT_EQ(a.counters.interruptsTaken, b.counters.interruptsTaken);
    EXPECT_EQ(a.counters.barrierEpisodes, b.counters.barrierEpisodes);
    EXPECT_EQ(a.counters.lockAcquires, b.counters.lockAcquires);
}

TEST(ParallelDeterminism, SameSpecTwiceInOneParallelBatch)
{
    // Duplicate every job: slots i and i+n carry identical specs but
    // run on different workers at different times. Their results must
    // match each other and the serial baseline exactly.
    std::vector<Job> jobs;
    const Mechanism mechs[] = {Mechanism::SharedMemory,
                               Mechanism::SharedMemoryPrefetch,
                               Mechanism::MpInterrupt,
                               Mechanism::MpPolling,
                               Mechanism::BulkTransfer};
    for (int round = 0; round < 2; ++round)
        for (Mechanism m : mechs)
            jobs.push_back(Job{smallEm3d(), spec(m), ""});

    SweepEngine engine(withJobs(4));
    const auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), 10u);

    const std::size_t n = std::size(mechs);
    for (std::size_t i = 0; i < n; ++i) {
        SCOPED_TRACE(core::mechanismShortName(mechs[i]));
        expectBitIdentical(results[i], results[i + n]);
        EXPECT_TRUE(results[i].verified);

        // And against a fresh serial run outside the engine.
        const auto serial =
            core::runApp(smallEm3d(), spec(mechs[i]));
        expectBitIdentical(results[i], serial);
    }
}

TEST(ParallelDeterminism, CrossTrafficRunsAgreeUnderConcurrency)
{
    // Cross-traffic injection exercises the RNG-free periodic injector
    // and the mesh contention paths; concurrency must not perturb it.
    std::vector<Job> jobs;
    for (int round = 0; round < 2; ++round) {
        jobs.push_back(
            Job{smallEm3d(), spec(Mechanism::SharedMemory, 10.0), ""});
        jobs.push_back(
            Job{smallEm3d(), spec(Mechanism::MpInterrupt, 10.0), ""});
    }
    SweepEngine engine(withJobs(4));
    const auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), 4u);
    expectBitIdentical(results[0], results[2]);
    expectBitIdentical(results[1], results[3]);
}

} // namespace
} // namespace alewife::exp
