/**
 * @file
 * Tests for the experiment result cache: key semantics, memory hits,
 * and the on-disk JSON round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "apps/stream.hh"
#include "core/runner.hh"
#include "exp/result_cache.hh"

namespace alewife::exp {
namespace {

core::RunSpec
baseSpec()
{
    core::RunSpec spec;
    spec.mechanism = core::Mechanism::SharedMemory;
    return spec;
}

core::RunResult
sampleResult()
{
    apps::Stream::Params p;
    p.valuesPerIter = 16;
    p.iters = 2;
    return core::runApp(apps::Stream::factory(p), baseSpec());
}

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path()
               / ("alewife-cache-test-"
                  + std::to_string(::getpid()) + "-"
                  + std::to_string(counter()++));
        std::filesystem::remove_all(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    static int &
    counter()
    {
        static int n = 0;
        return n;
    }
};

TEST(ResultCache, KeyIsStableAndSensitiveToEveryComponent)
{
    const core::RunSpec spec = baseSpec();
    const std::string k = ResultCache::key(spec, "stream/s=1");
    EXPECT_EQ(k, ResultCache::key(spec, "stream/s=1"));

    // Mechanism, machine knobs, cross traffic, and workload identity
    // must each produce a distinct key.
    core::RunSpec mech = spec;
    mech.mechanism = core::Mechanism::MpPolling;
    EXPECT_NE(k, ResultCache::key(mech, "stream/s=1"));

    core::RunSpec machine = spec;
    machine.machine.procMhz = 40.0;
    EXPECT_NE(k, ResultCache::key(machine, "stream/s=1"));

    core::RunSpec cross = spec;
    cross.crossTraffic.bytesPerCycle = 9.0;
    EXPECT_NE(k, ResultCache::key(cross, "stream/s=1"));

    EXPECT_NE(k, ResultCache::key(spec, "stream/s=2"));

    // The config display name is not a simulation parameter.
    core::RunSpec renamed = spec;
    renamed.machine.name = "other";
    EXPECT_EQ(k, ResultCache::key(renamed, "stream/s=1"));
}

TEST(ResultCache, EmptyAppKeyDisablesCaching)
{
    EXPECT_EQ(ResultCache::key(baseSpec(), ""), "");
    ResultCache cache;
    EXPECT_FALSE(cache.lookup("").has_value());
    cache.store("", sampleResult());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, MemoryHitReturnsStoredResult)
{
    ResultCache cache;
    const std::string k = ResultCache::key(baseSpec(), "stream/s=1");
    EXPECT_FALSE(cache.lookup(k).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    const core::RunResult r = sampleResult();
    cache.store(k, r);
    const auto hit = cache.lookup(k);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(hit->runtimeCycles, r.runtimeCycles);
    EXPECT_EQ(hit->checksum, r.checksum);
    EXPECT_EQ(hit->simEvents, r.simEvents);
}

TEST(ResultCache, DiskEntriesSurviveAcrossInstances)
{
    TempDir tmp;
    const std::string k = ResultCache::key(baseSpec(), "stream/s=1");
    const core::RunResult r = sampleResult();
    {
        ResultCache writer(tmp.path.string());
        writer.store(k, r);
    }
    // One JSON file per key on disk.
    int files = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(tmp.path)) {
        EXPECT_EQ(e.path().extension(), ".json");
        ++files;
    }
    EXPECT_EQ(files, 1);

    ResultCache reader(tmp.path.string());
    const auto hit = reader.lookup(k);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(reader.hits(), 1u);
    EXPECT_EQ(hit->runtimeCycles, r.runtimeCycles);
    EXPECT_EQ(hit->checksum, r.checksum);
    for (std::size_t i = 0; i < r.breakdown.ticks.size(); ++i)
        EXPECT_EQ(hit->breakdown.ticks[i], r.breakdown.ticks[i]);
}

TEST(ResultCache, CorruptDiskEntryIsAMiss)
{
    TempDir tmp;
    const std::string k = ResultCache::key(baseSpec(), "stream/s=1");
    {
        ResultCache writer(tmp.path.string());
        writer.store(k, sampleResult());
    }
    for (const auto &e :
         std::filesystem::directory_iterator(tmp.path)) {
        std::ofstream(e.path()) << "{ not json";
    }
    ResultCache reader(tmp.path.string());
    EXPECT_FALSE(reader.lookup(k).has_value());
    EXPECT_EQ(reader.misses(), 1u);
}

TEST(ResultCache, TruncatedDiskEntryIsAMiss)
{
    // A crash mid-write (or a torn copy) leaves a prefix of valid
    // JSON; the loader must treat it as a miss, not crash or return a
    // partial result.
    TempDir tmp;
    const std::string k = ResultCache::key(baseSpec(), "stream/s=1");
    {
        ResultCache writer(tmp.path.string());
        writer.store(k, sampleResult());
    }
    for (const auto &e :
         std::filesystem::directory_iterator(tmp.path)) {
        std::ifstream in(e.path());
        std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        ASSERT_GT(body.size(), 32u);
        std::ofstream(e.path()) << body.substr(0, body.size() / 2);
    }
    ResultCache reader(tmp.path.string());
    EXPECT_FALSE(reader.lookup(k).has_value());
    EXPECT_EQ(reader.misses(), 1u);
}

TEST(ResultCache, MismatchedStoredKeyIsAMiss)
{
    // A file landing under the wrong hash name (filename collision or
    // manual tampering) must be rejected by the embedded full key and
    // recomputed, never returned as a stale hit for the other key.
    TempDir tmp;
    const std::string k1 = ResultCache::key(baseSpec(), "stream/s=1");
    const std::string k2 = ResultCache::key(baseSpec(), "stream/s=2");
    ResultCache writer(tmp.path.string());
    writer.store(k1, sampleResult());

    // Masquerade k1's entry as k2's by renaming it to k2's hash name.
    std::filesystem::path k1file, k2file;
    for (const auto &e :
         std::filesystem::directory_iterator(tmp.path))
        k1file = e.path();
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(fnv1a64(k2)));
    k2file = tmp.path / name;
    std::filesystem::rename(k1file, k2file);

    ResultCache reader(tmp.path.string());
    EXPECT_FALSE(reader.lookup(k2).has_value());
    EXPECT_EQ(reader.misses(), 1u);
}

TEST(ResultCache, StrayTmpFilesAreIgnored)
{
    // Leftover write-then-rename temporaries must not shadow or break
    // the committed entry.
    TempDir tmp;
    const std::string k = ResultCache::key(baseSpec(), "stream/s=1");
    const core::RunResult r = sampleResult();
    {
        ResultCache writer(tmp.path.string());
        writer.store(k, r);
    }
    std::ofstream(tmp.path / "deadbeef.json.tmp.0") << "{ torn";
    ResultCache reader(tmp.path.string());
    const auto hit = reader.lookup(k);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->runtimeCycles, r.runtimeCycles);
}

TEST(ResultCache, PerturbedSpecsAreNeverCached)
{
    // Perturbed schedules are seed-dependent explorations; caching
    // them would poison unperturbed sweeps and vice versa.
    core::RunSpec spec = baseSpec();
    spec.perturb.tieBreak = true;
    EXPECT_EQ(ResultCache::key(spec, "stream/s=1"), "");

    core::RunSpec jitter = baseSpec();
    jitter.perturb.hopJitterFrac = 0.25;
    EXPECT_EQ(ResultCache::key(jitter, "stream/s=1"), "");

    // An all-defaults PerturbConfig (seed set but nothing enabled) is
    // not a perturbation and must keep the normal key.
    core::RunSpec inert = baseSpec();
    inert.perturb.seed = 99;
    EXPECT_EQ(ResultCache::key(inert, "stream/s=1"),
              ResultCache::key(baseSpec(), "stream/s=1"));
}

TEST(ResultCache, Fnv1aMatchesReferenceVectors)
{
    // Standard FNV-1a 64 test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

} // namespace
} // namespace alewife::exp
