/**
 * @file
 * Graceful-degradation edges of the sweep stack: checkpointing
 * disabled or unwritable, the result cache corrupted or unwritable —
 * every case must complete the sweep with a clear warning, never
 * abort it.
 *
 * Note on "unwritable": these tests run as root in CI, where mode
 * bits are bypassed, so unwritable paths are made by putting a
 * regular file where a parent directory would have to be.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "exp/farm.hh"
#include "exp/result_cache.hh"
#include "exp/serialize.hh"
#include "exp/sweep_engine.hh"

namespace alewife::exp {
namespace {

namespace fs = std::filesystem;

struct TempDir
{
    fs::path path;

    TempDir()
    {
        static int n = 0;
        path = fs::temp_directory_path()
               / ("alewife-degradation-test-"
                  + std::to_string(::getpid()) + "-"
                  + std::to_string(n++));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

FarmWorkload
streamWorkload()
{
    FarmWorkload w;
    w.app = "stream";
    w.scale = 0.25;
    return w;
}

std::vector<Job>
streamBatch(const FarmWorkload &w)
{
    std::vector<Job> batch(1);
    batch[0].app = makeWorkloadFactory(w);
    batch[0].spec.mechanism = core::Mechanism::SharedMemory;
    batch[0].appKey = w.appKey();
    return batch;
}

core::RunResult
referenceRun(const FarmWorkload &w)
{
    core::RunSpec spec;
    spec.mechanism = core::Mechanism::SharedMemory;
    return core::runApp(makeWorkloadFactory(w), spec);
}

TEST(SweepDegradation, CkptIntervalZeroDisablesSnapshotsButCompletes)
{
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    EngineOptions opts;
    opts.ckptDir = (tmp.path / "ckpt").string();
    opts.ckptIntervalCycles = 0.0;
    SweepEngine engine(opts);

    const auto results = engine.run(streamBatch(w));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(resultToJson(results[0]).dump(0),
              resultToJson(referenceRun(w)).dump(0));

    // No periodic saves happened: no snapshot files were left behind.
    int snapshots = 0;
    std::error_code ec;
    for (fs::directory_iterator it(tmp.path / "ckpt", ec);
         !ec && it != fs::directory_iterator(); ++it)
        ++snapshots;
    EXPECT_EQ(snapshots, 0);
}

TEST(SweepDegradation, UnwritableCkptDirWarnsAndCompletes)
{
    TempDir tmp;
    std::ofstream(tmp.path / "blocker") << "not a directory";
    const FarmWorkload w = streamWorkload();

    EngineOptions opts;
    opts.ckptDir = (tmp.path / "blocker" / "ckpt").string();
    opts.ckptIntervalCycles = 500.0; // force save attempts
    SweepEngine engine(opts);

    const auto results = engine.run(streamBatch(w));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].verified);
    EXPECT_EQ(resultToJson(results[0]).dump(0),
              resultToJson(referenceRun(w)).dump(0));
}

TEST(SweepDegradation, UnwritableCacheDirWarnsAndCompletes)
{
    TempDir tmp;
    std::ofstream(tmp.path / "blocker") << "not a directory";
    const FarmWorkload w = streamWorkload();

    ResultCache cache((tmp.path / "blocker" / "cache").string());
    EngineOptions opts;
    opts.cache = &cache;
    opts.appKey = w.appKey();
    SweepEngine engine(opts);

    const auto results = engine.run(streamBatch(w));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].verified);
}

TEST(SweepDegradation, CacheDirVanishingBetweenBatchesRecovers)
{
    TempDir tmp;
    const fs::path cacheDir = tmp.path / "cache";
    const FarmWorkload w = streamWorkload();

    ResultCache cache(cacheDir.string());
    EngineOptions opts;
    opts.cache = &cache;
    opts.appKey = w.appKey();
    SweepEngine engine(opts);

    const auto first = engine.run(streamBatch(w));
    ASSERT_EQ(first.size(), 1u);
    ASSERT_TRUE(fs::exists(cacheDir));

    // The cache directory vanishes mid-sweep (rm -rf, NFS blip). The
    // next batch must recreate it and complete — the in-memory layer
    // still answers, and persist() re-creates the directory.
    fs::remove_all(cacheDir);
    const auto second = engine.run(streamBatch(w));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(resultToJson(second[0]).dump(0),
              resultToJson(first[0]).dump(0));
}

TEST(CacheQuarantine, CorruptEntryIsRenamedBadAndRecomputed)
{
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    core::RunSpec spec;
    spec.mechanism = core::Mechanism::SharedMemory;
    const std::string key = ResultCache::key(spec, w.appKey());

    std::string entry;
    {
        ResultCache writer(tmp.path.string());
        writer.store(key, referenceRun(w));
        entry = writer.entryPath(key);
    }
    ASSERT_FALSE(entry.empty());

    // Tear the entry in half: parseable prefix, invalid document.
    {
        std::ifstream in(entry);
        std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::ofstream(entry, std::ios::trunc)
            << body.substr(0, body.size() / 2);
    }

    ResultCache reader(tmp.path.string());
    EXPECT_FALSE(reader.lookup(key).has_value());
    EXPECT_EQ(reader.quarantined(), 1u);
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_TRUE(fs::exists(entry + ".bad"));

    // The slot is free again: a recompute stores and reads back fine.
    reader.store(key, referenceRun(w));
    EXPECT_TRUE(reader.lookup(key).has_value());
}

TEST(CacheQuarantine, WellFormedForeignEntryIsAMissNotCorruption)
{
    // Entries with a wrong schema tag or a mismatched key are not
    // corrupt — just not ours. They must be left in place.
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    core::RunSpec spec;
    spec.mechanism = core::Mechanism::SharedMemory;
    const std::string key = ResultCache::key(spec, w.appKey());

    std::string entry;
    {
        ResultCache writer(tmp.path.string());
        writer.store(key, referenceRun(w));
        entry = writer.entryPath(key);
    }
    // Rewrite the entry with a foreign schema tag.
    std::ofstream(entry, std::ios::trunc)
        << "{\"schema\": \"somebody-elses\", \"version\": 1, "
           "\"key\": \"x\", \"result\": {}}";

    ResultCache reader(tmp.path.string());
    EXPECT_FALSE(reader.lookup(key).has_value());
    EXPECT_EQ(reader.quarantined(), 0u);
    EXPECT_TRUE(fs::exists(entry));
    EXPECT_FALSE(fs::exists(entry + ".bad"));
}

TEST(CacheQuarantine, MissingResultFieldIsQuarantined)
{
    TempDir tmp;
    const FarmWorkload w = streamWorkload();
    core::RunSpec spec;
    spec.mechanism = core::Mechanism::SharedMemory;
    const std::string key = ResultCache::key(spec, w.appKey());

    std::string entry;
    {
        ResultCache writer(tmp.path.string());
        writer.store(key, referenceRun(w));
        entry = writer.entryPath(key);
    }
    // Valid JSON object, but the entry fields are gone.
    std::ofstream(entry, std::ios::trunc) << "{\"oops\": true}";

    ResultCache reader(tmp.path.string());
    EXPECT_FALSE(reader.lookup(key).has_value());
    EXPECT_EQ(reader.quarantined(), 1u);
    EXPECT_TRUE(fs::exists(entry + ".bad"));
}

} // namespace
} // namespace alewife::exp
